//! Discrete-event queue.
//!
//! A binary heap of `(time, seq, event)` entries; `seq` breaks time ties in
//! insertion order, which makes runs fully deterministic for a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wdm_graph::EdgeId;

/// Events the simulator processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A new connection request arrives.
    Arrival,
    /// Connection `conn` terminates and releases its channels.
    Departure {
        /// Connection id.
        conn: u64,
    },
    /// Physical link failure (fibre cut).
    LinkFailure {
        /// The failed link.
        link: EdgeId,
    },
    /// The failed link is repaired.
    LinkRepair {
        /// The repaired link.
        link: EdgeId,
    },
}

#[derive(Debug, Clone)]
struct Entry {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute `time`.
    pub fn schedule(&mut self, time: f64, event: Event) {
        assert!(time.is_finite(), "non-finite event time");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    #[allow(clippy::should_implement_trait)] // queue pop, not an Iterator
    pub fn next(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, Event::Arrival);
        q.schedule(1.0, Event::Departure { conn: 7 });
        q.schedule(3.0, Event::Arrival);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.next(), Some((1.0, Event::Departure { conn: 7 })));
        assert_eq!(q.next(), Some((3.0, Event::Arrival)));
        assert_eq!(q.next(), Some((5.0, Event::Arrival)));
        assert_eq!(q.next(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, Event::Departure { conn: 1 });
        q.schedule(2.0, Event::Departure { conn: 2 });
        q.schedule(2.0, Event::Departure { conn: 3 });
        let order: Vec<u64> = std::iter::from_fn(|| q.next())
            .map(|(_, e)| match e {
                Event::Departure { conn } => conn,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_times() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, Event::Arrival);
    }
}
