//! Optimistic parallel batch provisioning — speculative routing with
//! serial-equivalent commit.
//!
//! [`crate::batch::provision_batch`] routes a demand set one request at a
//! time; each routing call sees every earlier reservation. That data
//! dependency looks fully serial, but most windows of consecutive demands
//! touch disjoint parts of the network, so their routing decisions would
//! come out the same even if they could not see each other. This module
//! exploits that: it routes a *window* of `K` pending demands concurrently
//! against a frozen view of the residual state (an immutable borrow — the
//! state cannot move while the window routes, so freezing costs nothing;
//! earlier revisions paid an O(m) clone per round), then **commits the
//! results in demand order** under a conflict rule that guarantees the
//! final [`BatchOutcome`] — routes, rejections, cost sums (in the same
//! floating-point accumulation order) and residual state — is
//! **bit-identical to the serial run**.
//!
//! Two [`ScheduleMode`]s decide *which* pending demands speculate each
//! round and what happens on a conflict:
//!
//! * [`ScheduleMode::Windowed`] (PR 3): speculate on the next `K` demands
//!   wholesale; the first non-committable result aborts the rest of the
//!   window (a later demand may have depended on the aborted one's
//!   channels), and the tail re-speculates next round. Under contention
//!   this collapses — at `K = 64` nearly every window aborts.
//! * [`ScheduleMode::ConflictGroups`] (default): a
//!   [`ConflictPartitioner`] predicts per-demand footprints through a
//!   [`FootprintOracle`] and selects a link-disjoint conflict group out
//!   of a `2K` lookahead; only the group speculates. Demands the
//!   partitioner skipped are routed **inline at their exact serial
//!   position** during the commit sweep — at that point the live state
//!   *is* the serial state, so the inline result is serial-exact by
//!   construction. A group member whose revalidation fails (a
//!   misprediction) is likewise re-routed inline on the spot — a bounded
//!   retry of exactly one extra routing call — instead of poisoning the
//!   rest of the round. The footprint-stamped `touched` array acts as the
//!   reservation lock table: every committed route (speculated or inline)
//!   stamps its links, and a speculated route commits only if its links
//!   are unstamped since its snapshot.
//!
//! ## Commit rules
//!
//! Within a round, results are visited in processing order; a speculated
//! result commits iff one of:
//!
//! 1. **Frozen = live.** No committed route has occupied channels since
//!    the round's snapshot was taken (rejections do not mutate state).
//!    The speculated call then saw exactly the state the serial run would
//!    have seen, so *any* result — success or failure — is the serial
//!    result. The first pending demand of every round commits by this
//!    rule, so every round makes progress and the engine terminates.
//! 2. **Disjoint revalidation** (successful routes, guarded): the policy
//!    [`has link-local decisions`](Policy::has_link_local_decisions), the
//!    network has [`distinct_static_costs`] with free conversion
//!    everywhere ([`zero_conversion_costs`] — together,
//!    [`link_local_revalidation_sound`]), and none of the route's links
//!    were occupied since the snapshot. Under uniform-per-link costs the
//!    auxiliary-graph weight of a link is occupancy-invariant, so
//!    intervening commits only *remove* candidate routes (saturating
//!    links) without re-pricing any; the speculated optimum is still
//!    feasible (its links are untouched) and still cheapest, and with
//!    pairwise-distinct link costs it is almost surely the *unique*
//!    cheapest, hence exactly what the serial run would pick. The
//!    link-locality requirement is essential, not cosmetic: a policy such
//!    as `TwoStep` picks the serial-identical *physical* path but breaks
//!    equal-cost wavelength ties by the exploration order of a network-
//!    wide `(link, λ)` Dijkstra, so occupancy changes on links the route
//!    never touches still flip its λ assignment. (Distinctness of link
//!    costs does not rule out equal path *sums*;
//!    `tests/speculative_equivalence.rs` is the empirical backstop. The
//!    guard is evaluated once per batch.)
//!
//!    Failures also commit under the guard when they are resource-
//!    monotone: the batch only occupies channels, so live availability is
//!    a subset of frozen availability, and a request with no disjoint
//!    pair (or no route at all) on the frozen state has none on the live
//!    state either. [`RoutingError::DegenerateRequest`] commits always
//!    (it depends only on the endpoints). Load-dependent failures abort.
//! 3. **Conflict recovery.** Windowed mode: the first non-committable
//!    result aborts itself and every later demand of the window; they
//!    re-speculate next round. Conflict-groups mode: the non-committable
//!    result alone aborts and is re-routed inline at its serial position
//!    (live = serial there, so the retry is exact); the rest of the round
//!    proceeds.
//!
//! With the rule-2 guard off (load-sensitive policy, non-distinct costs,
//! or nonzero conversion cost — the PR 8 caveat the guard now enforces),
//! conflict-groups mode does not burn speculation that rule 1
//! would discard: the plan degenerates to one demand per round — a warm
//! serial loop over persistent router contexts, which is exactly where
//! the measured single-core speedup comes from.
//!
//! Workers are [`RouterCtx::fork`] clones: auxiliary-graph skeletons stay
//! warm across rounds, and because each round's snapshot is a descendant
//! of the previous one's in a single mutation lineage, the engines'
//! incremental change-clock sync stays sound — no per-round invalidation,
//! no per-demand rebuild. On a single-core host the speedup over
//! [`crate::batch::provision_batch`] comes entirely from that engine
//! reuse (the serial path pays a full auxiliary-graph construction per
//! demand); with more cores the window also routes concurrently.

use crate::batch::{processing_order, BatchOrder, BatchOutcome, Demand};
use crate::policy::{Policy, ProvisionedRoute};
use crate::schedule::{ConflictPartitioner, GroupPlan, ScheduleMode};
use wdm_core::aux_engine::RouterCtx;
use wdm_core::error::RoutingError;
use wdm_core::journal::{EventSink, NetEvent, NoopSink};
use wdm_core::load::load_snapshot;
use wdm_core::network::{ResidualState, WdmNetwork};
use wdm_core::predict::{FootprintOracle, LocalityPredictor};
use wdm_graph::{EdgeId, NodeId};
use wdm_telemetry::{Counter, Hist, NoopRecorder, NoopTracer, Phase, Recorder, Tracer};

/// What the speculative engine did across one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SpeculationStats {
    /// Speculation rounds executed (snapshot + group fan-out + commit).
    pub rounds: u64,
    /// Speculated results committed (successes and monotone failures).
    pub commits: u64,
    /// Speculated results aborted by the conflict rules.
    pub aborts: u64,
    /// Demands routed again after their speculation aborted — one per
    /// abort (windowed: re-speculated next round; conflict-groups:
    /// re-routed inline at their serial position).
    pub retries: u64,
    /// Demands the conflict-groups scheduler never speculated — skipped
    /// by the partitioner as predicted-conflicting and routed inline at
    /// their serial position. Always zero in windowed mode. In sharded
    /// mode these are the cross-shard demands.
    pub inline_routes: u64,
    /// Demands the sharded scheduler classified as cross-shard (their
    /// predicted footprint leaves one shard). Each one routes inline and
    /// is counted in `inline_routes` too. Zero outside sharded mode.
    pub cut_demands: u64,
}

impl SpeculationStats {
    /// Aborted fraction of all speculated results.
    pub fn abort_rate(&self) -> f64 {
        let total = self.commits + self.aborts;
        if total == 0 {
            0.0
        } else {
            self.aborts as f64 / total as f64
        }
    }
}

/// Whether every link declares one uniform per-wavelength cost and no two
/// links share it — the static-cost premise of commit rule 2: under
/// uniform per-link costs the auxiliary weight of a link never moves with
/// occupancy, and pairwise-distinct costs make the cheapest route almost
/// surely unique. Links with an empty wavelength complement fail the
/// check (their minimum cost is not finite).
pub fn distinct_static_costs(net: &WdmNetwork) -> bool {
    let m = net.link_count();
    let mut costs = Vec::with_capacity(m);
    for ei in 0..m {
        let e = EdgeId::from(ei);
        if !net.graph().edge(e).is_uniform_cost() {
            return false;
        }
        let c = net.min_link_cost(e);
        if !c.is_finite() {
            return false;
        }
        costs.push(c);
    }
    costs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    costs.windows(2).all(|w| w[0] < w[1])
}

/// Whether wavelength conversion is free at every node. The §3.3 G′
/// conversion-arc weight is the *average* over the currently-available
/// λ_a → λ_b pair costs, so with a nonzero conversion cost that weight
/// moves whenever channel occupancy reshapes the two adjacent links'
/// availability sets — a shift commit rule 2's link-local check cannot
/// see (the PR 8 caveat, DESIGN.md §5h). Only when every conversion costs
/// exactly 0 does each pair average to 0 and the auxiliary weight stay
/// link-local under occupancy churn.
pub fn zero_conversion_costs(net: &WdmNetwork) -> bool {
    let w = net.num_wavelengths();
    (0..net.node_count())
        .map(NodeId::from)
        .all(|v| net.conversion(v).max_cost(w) == 0.0)
}

/// The complete premise of commit rule 2 (link-local revalidation): the
/// policy's decisions are link-local, the static costs are pairwise
/// distinct ([`distinct_static_costs`]) and conversion is free everywhere
/// ([`zero_conversion_costs`]). Every speculative engine gates rule 2 on
/// this predicate — when it is false only rule 1 (untouched links) can
/// commit a speculated route, which keeps commits bit-identical to the
/// serial fold regardless of how conversion costs bend the G′ averages.
pub fn link_local_revalidation_sound(policy: Policy, net: &WdmNetwork) -> bool {
    policy.has_link_local_decisions() && distinct_static_costs(net) && zero_conversion_costs(net)
}

/// Resolves an explicit `--threads` request against a per-round cap:
/// `0` means auto (the host's available parallelism); the result is
/// clamped to `1..=max(cap, 1)`. Worker count never changes any result —
/// it only bounds how many OS threads route concurrently.
pub(crate) fn worker_count(threads: usize, cap: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    t.clamp(1, cap.max(1))
}

/// Routes every item on one of the worker contexts and returns the
/// results in item order. Items are split into contiguous chunks, one per
/// worker; with a single worker (or a single item) everything runs inline
/// on the caller's thread. The result is a pure function of `f` — worker
/// count and chunk boundaries never change what any item computes,
/// because each context is synced from the same frozen state.
pub(crate) fn fan_out<R, TR, T, U>(
    ctxs: &mut [RouterCtx<R, TR>],
    items: &[T],
    f: impl Fn(&mut RouterCtx<R, TR>, &T) -> U + Sync,
) -> Vec<U>
where
    R: Recorder + Send,
    TR: Tracer + Send,
    T: Sync,
    U: Send,
{
    let n = items.len();
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let workers = ctxs.len().min(n).max(1);
    if workers <= 1 {
        let ctx = ctxs.first_mut().expect("at least one worker context");
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = Some(f(ctx, item));
        }
    } else {
        let chunk = n.div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            for ((items_c, out_c), ctx) in items
                .chunks(chunk)
                .zip(out.chunks_mut(chunk))
                .zip(ctxs.iter_mut())
            {
                let f = &f;
                scope.spawn(move |_| {
                    for (slot, item) in out_c.iter_mut().zip(items_c) {
                        *slot = Some(f(ctx, item));
                    }
                });
            }
        })
        .expect("speculation worker panicked");
    }
    out.into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

/// As [`crate::batch::provision_batch`], but routing up to `window`
/// pending demands speculatively per round under the default
/// [`ScheduleMode`] (see the module docs for the commit protocol). The
/// returned [`BatchOutcome`] is bit-identical to the serial run's for
/// every `window`; `window <= 1` degenerates to serial processing with a
/// persistent router context.
///
/// `recorder` receives only the speculation counters
/// ([`Counter::SpeculativeCommits`] / [`Counter::SpeculativeAborts`] /
/// [`Counter::SpeculativeRetries`] /
/// [`Counter::SpeculativeInlineRoutes`]) and the per-round
/// [`Hist::WindowOccupancy`] / [`Hist::ConflictGroupSize`] histograms;
/// the routing calls themselves are unrecorded, matching the serial
/// path's contract.
pub fn provision_batch_speculative<R: Recorder>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    window: usize,
    recorder: R,
) -> (BatchOutcome, SpeculationStats) {
    provision_batch_speculative_journaled(
        net, state, demands, policy, order, window, recorder, NoopSink,
    )
}

/// As [`provision_batch_speculative`], additionally appending one
/// [`NetEvent::Provision`] per committed route to `journal` (`id` = the
/// demand's index in `demands`), in commit order — replaying them over
/// `state` reproduces the outcome's final state. Event payloads are only
/// built when [`EventSink::enabled`]; with [`NoopSink`] this is exactly
/// the plain entry point.
#[allow(clippy::too_many_arguments)] // the plain entry point minus journal is the common call
pub fn provision_batch_speculative_journaled<R: Recorder, J: EventSink>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    window: usize,
    recorder: R,
    journal: J,
) -> (BatchOutcome, SpeculationStats) {
    provision_batch_speculative_observed(
        net,
        state,
        demands,
        policy,
        order,
        window,
        recorder,
        journal,
        &NoopTracer,
    )
}

/// As [`provision_batch_speculative_journaled`], additionally recording
/// spans on `tracer`. Each worker routes on a [`Tracer::fork_worker`]
/// child; the children are folded back in worker order after every
/// round's fan-out (contiguous chunk assignment makes that the serial
/// record stream), and the commit loop then attaches [`Phase::Commit`] /
/// [`Phase::Abort`] spans to the round's attempts via
/// [`Tracer::record_earlier`]. A demand may own more than one span group
/// — one per routing attempt (a windowed-mode abort re-speculates next
/// round; a conflict-groups abort re-routes inline immediately) —
/// attempts, not demands, are the unit the span stream counts.
#[allow(clippy::too_many_arguments)]
pub fn provision_batch_speculative_observed<R: Recorder, J: EventSink, T: Tracer + Send>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    window: usize,
    recorder: R,
    journal: J,
    tracer: &T,
) -> (BatchOutcome, SpeculationStats) {
    provision_batch_speculative_scheduled(
        net,
        state,
        demands,
        policy,
        order,
        window,
        ScheduleMode::default(),
        0,
        recorder,
        journal,
        tracer,
    )
}

/// The full entry point: as [`provision_batch_speculative_observed`] with
/// an explicit [`ScheduleMode`] and worker-thread count (`threads == 0`
/// means auto — the host's available parallelism). Conflict-groups and
/// sharded modes predict footprints with a [`LocalityPredictor`] at its
/// default radius; use [`provision_batch_speculative_with_oracle`] or
/// [`crate::sharded::provision_batch_sharded`] to supply another oracle.
#[allow(clippy::too_many_arguments)]
pub fn provision_batch_speculative_scheduled<R: Recorder, J: EventSink, T: Tracer + Send>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    window: usize,
    schedule: ScheduleMode,
    threads: usize,
    recorder: R,
    journal: J,
    tracer: &T,
) -> (BatchOutcome, SpeculationStats) {
    match schedule {
        ScheduleMode::Windowed => run_windowed(
            net, state, demands, policy, order, window, threads, recorder, journal, tracer,
        ),
        ScheduleMode::ConflictGroups => {
            let mut oracle = LocalityPredictor::with_default_radius(net);
            run_conflict_groups(
                net,
                state,
                demands,
                policy,
                order,
                window,
                threads,
                recorder,
                journal,
                tracer,
                &mut oracle,
            )
        }
        ScheduleMode::Sharded { shards } => {
            let mut oracle = LocalityPredictor::with_default_radius(net);
            crate::sharded::run_sharded(
                net,
                state,
                demands,
                policy,
                order,
                window,
                shards,
                threads,
                recorder,
                journal,
                tracer,
                &mut oracle,
            )
        }
    }
}

/// Conflict-groups scheduling with a caller-supplied [`FootprintOracle`].
/// The oracle only shapes the schedule — any oracle, however wrong,
/// yields the same bit-identical [`BatchOutcome`]; mispredictions cost
/// retries (missed conflicts) or parallelism (spurious ones).
#[allow(clippy::too_many_arguments)]
pub fn provision_batch_speculative_with_oracle<
    R: Recorder,
    J: EventSink,
    T: Tracer + Send,
    O: FootprintOracle,
>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    window: usize,
    recorder: R,
    journal: J,
    tracer: &T,
    oracle: &mut O,
) -> (BatchOutcome, SpeculationStats) {
    run_conflict_groups(
        net, state, demands, policy, order, window, 0, recorder, journal, tracer, oracle,
    )
}

/// The PR 3 windowed engine: speculate on the next `window` demands, abort
/// the window tail at the first conflict.
#[allow(clippy::too_many_arguments)]
fn run_windowed<R: Recorder, J: EventSink, T: Tracer + Send>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    window: usize,
    threads: usize,
    recorder: R,
    mut journal: J,
    tracer: &T,
) -> (BatchOutcome, SpeculationStats) {
    let window = window.max(1);
    let mut st = state.clone();
    let idx = processing_order(net, &st, demands, order);

    let mut ctxs: Vec<RouterCtx<NoopRecorder, T>> = (0..worker_count(threads, window))
        .map(|_| RouterCtx::with_recorder_and_tracer(NoopRecorder, tracer.fork_worker()))
        .collect();
    let tracing = tracer.enabled();

    let guard = link_local_revalidation_sound(policy, net);
    let mut touched = vec![false; net.link_count()];
    let mut provisioned = Vec::new();
    let mut rejected = Vec::new();
    let mut total_cost = 0.0;
    let mut stats = SpeculationStats::default();

    let mut pos = 0;
    while pos < idx.len() {
        let chunk = &idx[pos..(pos + window).min(idx.len())];
        stats.rounds += 1;
        if recorder.enabled() {
            recorder.observe(Hist::WindowOccupancy, chunk.len() as u64);
        }

        // The "frozen snapshot" of the commit protocol is the live state
        // itself, borrowed immutably for the fan-out: routing never
        // mutates, and commits happen strictly after the round's routing,
        // so this is the same freeze the old O(m) per-round clone bought —
        // now for free.
        let frozen = &st;
        let results = fan_out(&mut ctxs, chunk, |ctx, &i| {
            let d = demands[i];
            policy.route_ctx(ctx, net, frozen, d.src, d.dst)
        });
        if tracing {
            // Fold worker spans back in worker order: chunks are
            // contiguous and zipped with the workers in order, so this is
            // the serial record stream for the round.
            for ctx in &ctxs {
                tracer.absorb_worker(ctx.tracer());
            }
        }

        // In-order commit against the live state.
        let n_round = chunk.len() as u64;
        let mut committed_any = false;
        touched.iter_mut().for_each(|t| *t = false);
        let mut advanced = 0;
        for (k, (i, res)) in chunk.iter().copied().zip(results).enumerate() {
            // The k-th window member's routing spans sit `back` requests
            // before the buffer tail after the fold above.
            let back = n_round - 1 - k as u64;
            // Rule 1: until a commit occupies channels, the live state
            // still equals the snapshot and any result is serial-exact.
            match res {
                Ok(route) => {
                    let fp = route.footprint();
                    let ok =
                        !committed_any || (guard && fp.links.iter().all(|e| !touched[e.index()]));
                    if !ok {
                        // With the guard on, the speculated route's links
                        // were occupied since its snapshot; with it off,
                        // serial equivalence is unprovable once anything
                        // committed.
                        if recorder.enabled() {
                            recorder.add(
                                if guard {
                                    Counter::SpeculativeAbortConflict
                                } else {
                                    Counter::SpeculativeAbortOrdering
                                },
                                1,
                            );
                        }
                        break; // rule 3: the rest of the window aborts too
                    }
                    let commit_t0 = tracer.now_ns();
                    for e in &fp.links {
                        touched[e.index()] = true;
                    }
                    route
                        .occupy(net, &mut st)
                        .expect("committed route's links are untouched since its snapshot");
                    if journal.enabled() {
                        journal.record(NetEvent::Provision {
                            id: i as u64,
                            channels: route.channels(),
                        });
                    }
                    total_cost += route.total_cost();
                    provisioned.push((i, route));
                    committed_any = true;
                    if tracing {
                        tracer.record_earlier(back, Phase::Commit, commit_t0);
                    }
                }
                Err(err) => {
                    let ok = !committed_any
                        || match err {
                            RoutingError::DegenerateRequest => true,
                            RoutingError::NoDisjointPair | RoutingError::Unreachable { .. } => {
                                guard
                            }
                            _ => false,
                        };
                    if !ok {
                        // A load-dependent failure observed on a snapshot
                        // the committed routes have since shifted.
                        if recorder.enabled() {
                            recorder.add(Counter::SpeculativeAbortLoadShift, 1);
                        }
                        break; // rule 3
                    }
                    rejected.push(i);
                }
            }
            advanced += 1;
        }
        if tracing {
            // Mark every aborted attempt (the non-committable result and
            // the window tail behind it); they re-speculate next round.
            let abort_t0 = tracer.now_ns();
            for k in advanced..chunk.len() {
                tracer.record_earlier(n_round - 1 - k as u64, Phase::Abort, abort_t0);
            }
        }

        let aborted = (chunk.len() - advanced) as u64;
        stats.commits += advanced as u64;
        stats.aborts += aborted;
        stats.retries += aborted;
        if recorder.enabled() {
            recorder.add(Counter::SpeculativeCommits, advanced as u64);
            if aborted > 0 {
                recorder.add(Counter::SpeculativeAborts, aborted);
                recorder.add(Counter::SpeculativeRetries, aborted);
            }
        }
        pos += advanced;
    }

    let final_load = load_snapshot(net, &st);
    (
        BatchOutcome {
            provisioned,
            rejected,
            total_cost,
            final_load,
            state: st,
        },
        stats,
    )
}

/// Routes demand `idx` on the live state and commits whatever comes back.
/// The live state equals the serial state at this point in processing
/// order — every earlier demand of the batch has already committed its
/// serial result — so this result is serial-exact by construction and
/// commits unconditionally. Used for demands the partitioner skipped and
/// for bounded retries of mispredicted group members.
#[allow(clippy::too_many_arguments)]
fn route_inline_serial<J: EventSink, T: Tracer + Send, O: FootprintOracle + ?Sized>(
    net: &WdmNetwork,
    st: &mut ResidualState,
    demand: Demand,
    id: usize,
    policy: Policy,
    ctx: &mut RouterCtx<NoopRecorder, T>,
    tracer: &T,
    tracing: bool,
    journal: &mut J,
    oracle: &mut O,
    touched: &mut [bool],
    committed_any: &mut bool,
    provisioned: &mut Vec<(usize, ProvisionedRoute)>,
    rejected: &mut Vec<usize>,
    total_cost: &mut f64,
) {
    let res = policy.route_ctx(ctx, net, &*st, demand.src, demand.dst);
    if tracing {
        // The inline attempt becomes the newest request in the span
        // stream; callers account for the shift when attributing spans to
        // earlier fan-out attempts.
        tracer.absorb_worker(ctx.tracer());
    }
    match res {
        Ok(route) => {
            let commit_t0 = tracer.now_ns();
            let fp = route.footprint();
            oracle.observe(demand.src, demand.dst, &fp);
            for e in &fp.links {
                touched[e.index()] = true;
            }
            route
                .occupy(net, st)
                .expect("inline route computed on the live state");
            if journal.enabled() {
                journal.record(NetEvent::Provision {
                    id: id as u64,
                    channels: route.channels(),
                });
            }
            *total_cost += route.total_cost();
            provisioned.push((id, route));
            *committed_any = true;
            if tracing {
                tracer.record_earlier(0, Phase::Commit, commit_t0);
            }
        }
        Err(_) => rejected.push(id),
    }
}

/// The conflict-groups engine: plan a link-disjoint group, speculate only
/// on it, sweep the round's whole range in processing order committing
/// members by rules 1–2 and routing everything else (skipped demands and
/// mispredicted members) inline at its serial position.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_conflict_groups<
    R: Recorder,
    J: EventSink,
    T: Tracer + Send,
    O: FootprintOracle,
>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    window: usize,
    threads: usize,
    recorder: R,
    mut journal: J,
    tracer: &T,
    oracle: &mut O,
) -> (BatchOutcome, SpeculationStats) {
    let window = window.max(1);
    let mut st = state.clone();
    let idx = processing_order(net, &st, demands, order);

    let mut ctxs: Vec<RouterCtx<NoopRecorder, T>> = (0..worker_count(threads, window))
        .map(|_| RouterCtx::with_recorder_and_tracer(NoopRecorder, tracer.fork_worker()))
        .collect();
    let tracing = tracer.enabled();

    let guard = link_local_revalidation_sound(policy, net);
    let mut partitioner = ConflictPartitioner::new(net.link_count());
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut member_ids: Vec<usize> = Vec::new();
    let mut touched = vec![false; net.link_count()];
    let mut provisioned = Vec::new();
    let mut rejected = Vec::new();
    let mut total_cost = 0.0;
    let mut stats = SpeculationStats::default();

    let mut pos = 0;
    while pos < idx.len() {
        stats.rounds += 1;
        // Plan the round. Without the rule-2 guard only rule 1 can commit
        // — exactly one demand per round — so speculating a whole group
        // would discard all but the head's work; degenerate to the warm
        // serial loop instead.
        let plan = if guard && window > 1 {
            pairs.clear();
            pairs.extend(idx[pos..].iter().take(window * 2).map(|&i| {
                let d = demands[i];
                (d.src, d.dst)
            }));
            partitioner.plan(oracle, &pairs, window)
        } else {
            GroupPlan {
                members: vec![0],
                range: 1,
            }
        };
        if recorder.enabled() {
            recorder.observe(Hist::WindowOccupancy, plan.range as u64);
            recorder.observe(Hist::ConflictGroupSize, plan.members.len() as u64);
        }

        // Speculate on the group against the frozen (= live, immutably
        // borrowed) state.
        member_ids.clear();
        member_ids.extend(plan.members.iter().map(|&k| idx[pos + k]));
        let frozen = &st;
        let results = fan_out(&mut ctxs, &member_ids, |ctx, &i| {
            let d = demands[i];
            policy.route_ctx(ctx, net, frozen, d.src, d.dst)
        });
        if tracing {
            for ctx in &ctxs {
                tracer.absorb_worker(ctx.tracer());
            }
        }

        // Sweep the whole range in processing order.
        let n_members = plan.members.len() as u64;
        let mut appended: u64 = 0; // inline requests absorbed since the fold
        let mut member_rank: usize = 0;
        let mut results = results.into_iter();
        let mut committed_any = false;
        touched.iter_mut().for_each(|t| *t = false);
        for k in 0..plan.range {
            let i = idx[pos + k];
            if plan.members.get(member_rank) != Some(&k) {
                // Skipped by the partitioner: predicted to conflict with
                // the scanned prefix; route it at its serial position.
                stats.inline_routes += 1;
                if recorder.enabled() {
                    recorder.add(Counter::SpeculativeInlineRoutes, 1);
                }
                route_inline_serial(
                    net,
                    &mut st,
                    demands[i],
                    i,
                    policy,
                    &mut ctxs[0],
                    tracer,
                    tracing,
                    &mut journal,
                    oracle,
                    &mut touched,
                    &mut committed_any,
                    &mut provisioned,
                    &mut rejected,
                    &mut total_cost,
                );
                appended += 1;
                continue;
            }
            let res = results.next().expect("one result per group member");
            let back = (n_members - 1 - member_rank as u64) + appended;
            member_rank += 1;
            let committable = match &res {
                // Rule 1 / rule 2, exactly as in windowed mode.
                Ok(route) => {
                    !committed_any
                        || (guard && route.footprint().links.iter().all(|e| !touched[e.index()]))
                }
                Err(err) => {
                    !committed_any
                        || match err {
                            RoutingError::DegenerateRequest => true,
                            RoutingError::NoDisjointPair | RoutingError::Unreachable { .. } => {
                                guard
                            }
                            _ => false,
                        }
                }
            };
            if committable {
                stats.commits += 1;
                if recorder.enabled() {
                    recorder.add(Counter::SpeculativeCommits, 1);
                }
                match res {
                    Ok(route) => {
                        let commit_t0 = tracer.now_ns();
                        let fp = route.footprint();
                        oracle.observe(demands[i].src, demands[i].dst, &fp);
                        for e in &fp.links {
                            touched[e.index()] = true;
                        }
                        route
                            .occupy(net, &mut st)
                            .expect("committed route's links are untouched since its snapshot");
                        if journal.enabled() {
                            journal.record(NetEvent::Provision {
                                id: i as u64,
                                channels: route.channels(),
                            });
                        }
                        total_cost += route.total_cost();
                        provisioned.push((i, route));
                        committed_any = true;
                        if tracing {
                            tracer.record_earlier(back, Phase::Commit, commit_t0);
                        }
                    }
                    Err(_) => rejected.push(i),
                }
            } else {
                // Misprediction: the member's footprint was touched since
                // its snapshot (or, guard off, anything committed first).
                // Rule 3, conflict-groups flavor: abort this attempt alone
                // and retry inline — a bounded cost of one routing call,
                // and the retry is serial-exact because live = serial
                // here. The round's tail is unaffected.
                stats.aborts += 1;
                stats.retries += 1;
                if recorder.enabled() {
                    recorder.add(
                        match &res {
                            Ok(_) if guard => Counter::SpeculativeAbortConflict,
                            Ok(_) => Counter::SpeculativeAbortOrdering,
                            Err(_) => Counter::SpeculativeAbortLoadShift,
                        },
                        1,
                    );
                    recorder.add(Counter::SpeculativeAborts, 1);
                    recorder.add(Counter::SpeculativeRetries, 1);
                }
                if tracing {
                    tracer.record_earlier(back, Phase::Abort, tracer.now_ns());
                }
                route_inline_serial(
                    net,
                    &mut st,
                    demands[i],
                    i,
                    policy,
                    &mut ctxs[0],
                    tracer,
                    tracing,
                    &mut journal,
                    oracle,
                    &mut touched,
                    &mut committed_any,
                    &mut provisioned,
                    &mut rejected,
                    &mut total_cost,
                );
                appended += 1;
            }
        }
        pos += plan.range;
    }

    let final_load = load_snapshot(net, &st);
    (
        BatchOutcome {
            provisioned,
            rejected,
            total_cost,
            final_load,
            state: st,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{full_mesh_demands, provision_batch};
    use wdm_core::network::NetworkBuilder;
    use wdm_core::predict::{AllConflictOracle, NoConflictOracle};
    use wdm_telemetry::TelemetrySink;

    fn nsfnet(w: usize) -> WdmNetwork {
        NetworkBuilder::nsfnet(w).build()
    }

    /// A network whose links all carry distinct uniform costs *and* whose
    /// conversion is free (rule 2 applies for cost-static policies —
    /// conversion must cost 0 or the G′ conversion-arc averages move with
    /// occupancy and link-local revalidation is unsound).
    fn distinct_net(w: usize) -> WdmNetwork {
        distinct_net_with_conversion(w, 0.0)
    }

    /// As [`distinct_net`] but with an explicit per-conversion cost — the
    /// `cost > 0` variants are the rule-2 counterexample family.
    fn distinct_net_with_conversion(w: usize, conv_cost: f64) -> WdmNetwork {
        use wdm_core::conversion::ConversionTable;
        let mut b = NetworkBuilder::new(w);
        let n = 10u32;
        let nodes: Vec<_> = (0..n)
            .map(|_| b.add_node(ConversionTable::Full { cost: conv_cost }))
            .collect();
        let mut c = 1.0;
        // A ring plus chords: well connected, every cost unique.
        for i in 0..n as usize {
            for j in [(i + 1) % n as usize, (i + 3) % n as usize] {
                b.add_link(nodes[i], nodes[j], c);
                c += 0.13;
                b.add_link(nodes[j], nodes[i], c);
                c += 0.13;
            }
        }
        b.build()
    }

    #[test]
    fn distinct_static_costs_detects_both_cases() {
        assert!(distinct_static_costs(&distinct_net(4)));
        // NSFNET's twin directed links share their length-derived cost.
        assert!(!distinct_static_costs(&nsfnet(4)));
    }

    #[test]
    fn revalidation_guard_requires_free_conversion() {
        let sound = distinct_net(4);
        assert!(zero_conversion_costs(&sound));
        assert!(link_local_revalidation_sound(Policy::CostOnly, &sound));

        let costly = distinct_net_with_conversion(4, 0.3);
        // Distinct static costs alone no longer satisfy the guard: with a
        // nonzero conversion cost the G′ conversion-arc average moves with
        // occupancy, which rule 2's link-local check cannot see.
        assert!(distinct_static_costs(&costly));
        assert!(!zero_conversion_costs(&costly));
        assert!(!link_local_revalidation_sound(Policy::CostOnly, &costly));
        // Load-sensitive policies never qualify regardless of the network.
        assert!(!link_local_revalidation_sound(
            Policy::Joint { a: 2.0 },
            &sound
        ));
    }

    /// The satellite regression for the PR 8 caveat: on a distinct-cost
    /// network with *nonzero* conversion cost, every speculative schedule
    /// must still be bit-identical to the serial fold — which it can only
    /// guarantee by not relying on link-local revalidation there.
    #[test]
    fn nonzero_conversion_cost_stays_bit_identical_to_serial() {
        let net = distinct_net_with_conversion(4, 0.3);
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(10, 1);
        let serial = provision_batch(&net, &st, &demands, Policy::CostOnly, BatchOrder::AsGiven);
        for schedule in [
            ScheduleMode::Windowed,
            ScheduleMode::ConflictGroups,
            ScheduleMode::Sharded { shards: 3 },
        ] {
            for window in [2, 8, 64] {
                let (spec, stats) = provision_batch_speculative_scheduled(
                    &net,
                    &st,
                    &demands,
                    Policy::CostOnly,
                    BatchOrder::AsGiven,
                    window,
                    schedule,
                    0,
                    NoopRecorder,
                    NoopSink,
                    &NoopTracer,
                );
                assert_outcomes_identical(&serial, &spec);
                match schedule {
                    ScheduleMode::Windowed => {
                        assert_eq!(stats.commits, demands.len() as u64, "window {window}");
                        assert_eq!(stats.aborts, stats.retries);
                    }
                    ScheduleMode::ConflictGroups | ScheduleMode::Sharded { .. } => {
                        assert_stats_accounted(&stats, demands.len());
                    }
                }
            }
        }
    }

    fn assert_outcomes_identical(a: &BatchOutcome, b: &BatchOutcome) {
        assert_eq!(a.provisioned, b.provisioned);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
        assert_eq!(a.final_load, b.final_load);
        assert_eq!(a.state, b.state);
    }

    /// The conservation law: every demand commits exactly once, through
    /// exactly one of the three paths.
    fn assert_stats_accounted(stats: &SpeculationStats, demands: usize) {
        assert_eq!(
            stats.commits + stats.retries + stats.inline_routes,
            demands as u64
        );
        assert_eq!(stats.aborts, stats.retries);
    }

    #[test]
    fn speculative_matches_serial_on_distinct_cost_net() {
        let net = distinct_net(4);
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(10, 1);
        let serial = provision_batch(&net, &st, &demands, Policy::CostOnly, BatchOrder::AsGiven);
        for schedule in [
            ScheduleMode::Windowed,
            ScheduleMode::ConflictGroups,
            ScheduleMode::Sharded { shards: 3 },
        ] {
            for window in [1, 2, 8, 64] {
                let (spec, stats) = provision_batch_speculative_scheduled(
                    &net,
                    &st,
                    &demands,
                    Policy::CostOnly,
                    BatchOrder::AsGiven,
                    window,
                    schedule,
                    0,
                    NoopRecorder,
                    NoopSink,
                    &NoopTracer,
                );
                assert_outcomes_identical(&serial, &spec);
                match schedule {
                    ScheduleMode::Windowed => {
                        assert_eq!(stats.commits, demands.len() as u64, "window {window}");
                        assert_eq!(stats.inline_routes, 0);
                        assert_eq!(stats.aborts, stats.retries);
                    }
                    ScheduleMode::ConflictGroups | ScheduleMode::Sharded { .. } => {
                        assert_stats_accounted(&stats, demands.len());
                    }
                }
            }
        }
    }

    #[test]
    fn speculative_matches_serial_without_rule_two() {
        // NSFNET + a load-sensitive policy: the guard is off. Windowed
        // mode commits by rule 1 only; conflict-groups mode degenerates
        // to one demand per round. Correctness must not depend on rule 2
        // either way.
        let net = nsfnet(8);
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(14, 1);
        let policy = Policy::Joint { a: 2.0 };
        let serial = provision_batch(&net, &st, &demands, policy, BatchOrder::LongestFirst);
        for schedule in [ScheduleMode::Windowed, ScheduleMode::ConflictGroups] {
            let (spec, stats) = provision_batch_speculative_scheduled(
                &net,
                &st,
                &demands,
                policy,
                BatchOrder::LongestFirst,
                8,
                schedule,
                0,
                NoopRecorder,
                NoopSink,
                &NoopTracer,
            );
            assert_outcomes_identical(&serial, &spec);
            // Every demand commits exactly once; each abort costs one retry.
            assert_eq!(stats.commits, demands.len() as u64);
            assert_eq!(
                stats.commits + stats.aborts,
                demands.len() as u64 + stats.retries
            );
            if schedule == ScheduleMode::ConflictGroups {
                // Guard off: one rule-1 commit per round, nothing wasted.
                assert_eq!(stats.aborts, 0);
                assert_eq!(stats.inline_routes, 0);
                assert_eq!(stats.rounds, demands.len() as u64);
            }
        }
    }

    #[test]
    fn junk_oracles_only_cost_retries_or_parallelism() {
        // The no-conflict oracle predicts nothing, so the partitioner
        // speculates greedily and every real conflict becomes a retry;
        // the all-conflict oracle serialises everything. Both must stay
        // bit-identical to serial.
        let net = distinct_net(4);
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(10, 1);
        let serial = provision_batch(&net, &st, &demands, Policy::CostOnly, BatchOrder::AsGiven);

        let mut optimist = NoConflictOracle;
        let (spec, stats) = provision_batch_speculative_with_oracle(
            &net,
            &st,
            &demands,
            Policy::CostOnly,
            BatchOrder::AsGiven,
            16,
            NoopRecorder,
            NoopSink,
            &NoopTracer,
            &mut optimist,
        );
        assert_outcomes_identical(&serial, &spec);
        assert_stats_accounted(&stats, demands.len());
        // Empty predictions mean nothing is ever skipped — conflicts
        // surface as bounded retries instead.
        assert_eq!(stats.inline_routes, 0);

        let mut pessimist = AllConflictOracle {
            links: net.link_count(),
        };
        let (spec, stats) = provision_batch_speculative_with_oracle(
            &net,
            &st,
            &demands,
            Policy::CostOnly,
            BatchOrder::AsGiven,
            16,
            NoopRecorder,
            NoopSink,
            &NoopTracer,
            &mut pessimist,
        );
        assert_outcomes_identical(&serial, &spec);
        // Everything conflicts: singleton groups, a pure serial loop.
        assert_eq!(stats.commits, demands.len() as u64);
        assert_eq!(stats.aborts, 0);
        assert_eq!(stats.rounds, demands.len() as u64);
    }

    #[test]
    fn counters_match_stats_and_windows_are_recorded() {
        let net = distinct_net(4);
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(10, 1);
        for schedule in [ScheduleMode::Windowed, ScheduleMode::ConflictGroups] {
            let sink = TelemetrySink::new();
            let (_, stats) = provision_batch_speculative_scheduled(
                &net,
                &st,
                &demands,
                Policy::CostOnly,
                BatchOrder::AsGiven,
                8,
                schedule,
                0,
                &sink,
                NoopSink,
                &NoopTracer,
            );
            let snap = sink.snapshot();
            assert_eq!(snap.counters["speculative_commits"], stats.commits);
            assert_eq!(snap.counters["speculative_aborts"], stats.aborts);
            assert_eq!(snap.counters["speculative_retries"], stats.retries);
            assert_eq!(
                snap.counters["speculative_inline_routes"],
                stats.inline_routes
            );
            let occ = &snap.histograms["window_occupancy"];
            assert_eq!(occ.count, stats.rounds);
            if schedule == ScheduleMode::ConflictGroups {
                let grp = &snap.histograms["conflict_group_size"];
                assert_eq!(grp.count, stats.rounds);
                // Group size never exceeds the window.
                assert!(grp.max <= 8);
            }
            // No routing telemetry leaks from the speculated calls.
            assert_eq!(snap.counters["suurballe_searches"], 0);
        }
    }

    #[test]
    fn degenerate_and_infeasible_demands_reject_identically() {
        let net = distinct_net(2);
        let st = ResidualState::fresh(&net);
        let mut demands = vec![Demand::new(3, 3)]; // degenerate
        demands.extend(full_mesh_demands(10, 1));
        demands.push(Demand::new(5, 5));
        let serial = provision_batch(&net, &st, &demands, Policy::CostOnly, BatchOrder::AsGiven);
        assert!(!serial.rejected.is_empty());
        for schedule in [ScheduleMode::Windowed, ScheduleMode::ConflictGroups] {
            let (spec, _) = provision_batch_speculative_scheduled(
                &net,
                &st,
                &demands,
                Policy::CostOnly,
                BatchOrder::AsGiven,
                16,
                schedule,
                0,
                NoopRecorder,
                NoopSink,
                &NoopTracer,
            );
            assert_outcomes_identical(&serial, &spec);
        }
    }

    #[test]
    fn observed_speculation_attaches_spans_to_attempts() {
        use wdm_core::journal::NoopSink;
        use wdm_telemetry::SpanBuffer;

        // NSFNET + a load-sensitive policy under *windowed* scheduling:
        // the guard is off, so windows genuinely abort and re-speculate.
        let net = nsfnet(8);
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(14, 1);
        let tracer = SpanBuffer::new();
        let sink = TelemetrySink::new();
        let (out, stats) = provision_batch_speculative_scheduled(
            &net,
            &st,
            &demands,
            Policy::Joint { a: 2.0 },
            BatchOrder::LongestFirst,
            8,
            ScheduleMode::Windowed,
            0,
            &sink,
            NoopSink,
            &tracer,
        );
        // One request ordinal per speculation *attempt*, not per demand.
        assert_eq!(tracer.requests_begun(), stats.commits + stats.aborts);
        let recs = tracer.records();
        let commits = recs.iter().filter(|r| r.phase == Phase::Commit).count();
        assert_eq!(commits, out.provisioned.len());
        let aborts = recs.iter().filter(|r| r.phase == Phase::Abort).count() as u64;
        assert_eq!(aborts, stats.aborts);
        assert!(stats.aborts > 0, "load-sensitive batch should abort some");
        // Cause counters fire once per aborted round (the first
        // non-committable result; the tail aborts with it).
        let snap = sink.snapshot();
        let causes = snap.counters["speculative_abort_conflict"]
            + snap.counters["speculative_abort_ordering"]
            + snap.counters["speculative_abort_load_shift"];
        assert!(causes >= 1 && causes <= stats.aborts);
        // The guard is off on NSFNET, so no conflict-rule aborts exist.
        assert_eq!(snap.counters["speculative_abort_conflict"], 0);
    }

    #[test]
    fn observed_conflict_groups_attach_spans_to_every_attempt() {
        use wdm_core::journal::NoopSink;
        use wdm_telemetry::SpanBuffer;

        // Dense mesh on a distinct-cost net: the partitioner both skips
        // demands (inline routes) and occasionally mispredicts (retries),
        // exercising the mid-sweep span accounting.
        let net = distinct_net(4);
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(10, 1);
        let tracer = SpanBuffer::new();
        let (out, stats) = provision_batch_speculative_scheduled(
            &net,
            &st,
            &demands,
            Policy::CostOnly,
            BatchOrder::AsGiven,
            16,
            ScheduleMode::ConflictGroups,
            0,
            NoopRecorder,
            NoopSink,
            &tracer,
        );
        assert_stats_accounted(&stats, demands.len());
        // One request per routing attempt: speculated (commits + aborts)
        // plus inline (skipped + retries).
        assert_eq!(
            tracer.requests_begun(),
            stats.commits + stats.aborts + stats.inline_routes + stats.retries
        );
        let recs = tracer.records();
        let commits = recs.iter().filter(|r| r.phase == Phase::Commit).count();
        assert_eq!(commits, out.provisioned.len());
        let aborts = recs.iter().filter(|r| r.phase == Phase::Abort).count() as u64;
        assert_eq!(aborts, stats.aborts);
    }

    #[test]
    fn empty_batch_runs_no_rounds() {
        for schedule in [ScheduleMode::Windowed, ScheduleMode::ConflictGroups] {
            let net = distinct_net(4);
            let st = ResidualState::fresh(&net);
            let (out, stats) = provision_batch_speculative_scheduled(
                &net,
                &st,
                &[],
                Policy::CostOnly,
                BatchOrder::AsGiven,
                8,
                schedule,
                0,
                NoopRecorder,
                NoopSink,
                &NoopTracer,
            );
            assert!(out.provisioned.is_empty() && out.rejected.is_empty());
            assert_eq!(stats, SpeculationStats::default());
        }
    }
}
