//! Routing policies the simulator can provision requests with.

use wdm_core::aux_engine::RouterCtx;
use wdm_core::baselines;
use wdm_core::disjoint::{robust_route_ctx, RouteFootprint};
use wdm_core::error::RoutingError;
use wdm_core::joint::{find_two_paths_joint_as_printed_ctx, find_two_paths_joint_ctx};
use wdm_core::mincog::find_two_paths_mincog_ctx;
use wdm_core::network::{ResidualState, WdmNetwork};
use wdm_core::semilightpath::{Hop, RobustRoute, Semilightpath};
use wdm_graph::NodeId;
use wdm_telemetry::{Counter, Hist, Phase, Recorder, RouteTrace, Tracer};

/// A provisioned route: protected (primary + backup) or unprotected.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ProvisionedRoute {
    /// Primary + edge-disjoint backup (the paper's active protection).
    Protected(RobustRoute),
    /// Primary only (the passive approach).
    Unprotected(Semilightpath),
}

impl ProvisionedRoute {
    /// Total channel-cost of everything reserved.
    pub fn total_cost(&self) -> f64 {
        match self {
            ProvisionedRoute::Protected(r) => r.total_cost(),
            ProvisionedRoute::Unprotected(p) => p.cost,
        }
    }

    /// Occupies all reserved channels.
    pub fn occupy(
        &self,
        net: &WdmNetwork,
        state: &mut ResidualState,
    ) -> Result<(), wdm_core::network::StateError> {
        match self {
            ProvisionedRoute::Protected(r) => r.occupy(net, state),
            ProvisionedRoute::Unprotected(p) => p.occupy(net, state),
        }
    }

    /// Releases all reserved channels.
    pub fn release(&self, state: &mut ResidualState) {
        match self {
            ProvisionedRoute::Protected(r) => r.release(state),
            ProvisionedRoute::Unprotected(p) => p.release(state),
        }
    }

    /// Every reserved channel in occupation order (primary hops then
    /// backup hops) — the payload journal events carry, so replay occupies
    /// in exactly the live order.
    pub fn channels(&self) -> Vec<Hop> {
        match self {
            ProvisionedRoute::Protected(r) => r
                .primary
                .hops
                .iter()
                .chain(r.backup.hops.iter())
                .copied()
                .collect(),
            ProvisionedRoute::Unprotected(p) => p.hops.clone(),
        }
    }

    /// The link-level dependency footprint of the decision that produced
    /// this route: the links it traverses. (Whether the decision *also*
    /// read every link's load is a property of the policy, not the route —
    /// see [`Policy::is_load_sensitive`].)
    pub fn footprint(&self) -> RouteFootprint {
        match self {
            ProvisionedRoute::Protected(r) => RouteFootprint::of_route(r),
            ProvisionedRoute::Unprotected(p) => RouteFootprint::of_semilightpath(p),
        }
    }
}

/// Which algorithm provisions each arriving request.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Policy {
    /// §3.3: cost-minimising disjoint pair (`G'` + Suurballe + refinement).
    CostOnly,
    /// §4.1: load-minimising disjoint pair (`G_c`, threshold search).
    LoadOnly {
        /// Exponential congestion base `a > 1`.
        a: f64,
    },
    /// §4.2: joint load + cost (the paper's headline policy).
    Joint {
        /// Exponential congestion base `a > 1`.
        a: f64,
    },
    /// §4.2 with the `G_rc` weights exactly as printed in the paper
    /// (`/N(e)` normalisation) — the ablation variant.
    JointAsPrinted {
        /// Exponential congestion base `a > 1`.
        a: f64,
    },
    /// Greedy two-step baseline (shortest, remove, shortest).
    TwoStep,
    /// §3.3 without the Lemma 2 refinement (first-fit wavelengths).
    Unrefined,
    /// k-shortest-paths disjoint pair baseline.
    Ksp {
        /// Number of candidate paths to enumerate.
        k: usize,
    },
    /// Node-disjoint protection (extension): backup survives single node
    /// failures too.
    NodeDisjoint,
    /// Unprotected shortest semilightpath (passive recovery).
    PrimaryOnly,
}

impl Policy {
    /// Short display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::CostOnly => "cost-only(3.3)",
            Policy::LoadOnly { .. } => "load-only(4.1)",
            Policy::Joint { .. } => "joint(4.2)",
            Policy::JointAsPrinted { .. } => "joint(as-printed)",
            Policy::TwoStep => "two-step",
            Policy::Unrefined => "unrefined",
            Policy::Ksp { .. } => "ksp",
            Policy::NodeDisjoint => "node-disjoint",
            Policy::PrimaryOnly => "primary-only",
        }
    }

    /// Whether the policy's route choice reads link *loads* (the `G_c` /
    /// `G_rc` congestion weights and the §4.1 threshold ladder) rather than
    /// only static costs and channel availability. A load-sensitive
    /// decision depends on every link's occupancy, so the speculative batch
    /// engine can never revalidate it by link-disjointness alone.
    pub fn is_load_sensitive(&self) -> bool {
        matches!(
            self,
            Policy::LoadOnly { .. } | Policy::Joint { .. } | Policy::JointAsPrinted { .. }
        )
    }

    /// Whether the policy's *entire* decision — the physical paths **and**
    /// the wavelength assignment — is a function of only the traversed
    /// links' channel availability, given pairwise-distinct uniform static
    /// link costs. Only such decisions can the speculative batch engine
    /// revalidate by checking that a route's links were untouched (commit
    /// rule 2).
    ///
    /// True for the §3.3 pipeline and its variants: the auxiliary-graph
    /// pair is the (almost surely unique) static-cost optimum, and the
    /// per-leg wavelength choice ([`assign_wavelengths_on_path`]'s DP, or
    /// `Unrefined`'s greedy first-fit) reads nothing but the leg's own
    /// edges. False for:
    ///
    /// * the load-aware policies ([`Policy::is_load_sensitive`]) — the
    ///   congestion weights and threshold ladder read every link's load;
    /// * `TwoStep` and `PrimaryOnly` — [`optimal_semilightpath`] is a
    ///   Dijkstra over `(link, λ)` states, and with uniform per-link costs
    ///   the same physical path ties at equal cost on several wavelengths;
    ///   which tie is settled first depends on heap order, which is shaped
    ///   by the availability of *other* explored links;
    /// * `Ksp` — Yen's candidate list shifts whenever any network link
    ///   exhausts, so the scanned pair set depends on non-route links.
    ///
    /// Caveat on the §3.3 pipeline: its `G'` conversion-arc weight is the
    /// *average* allowed `λ_a → λ_b` pair cost, and same-λ pairs cost 0 —
    /// with a nonzero conversion cost that average moves as occupancy
    /// reshapes the two adjacent links' availability sets, so the
    /// Suurballe argmin can flip between pairs whose own links are
    /// untouched. The flip needs the availability shift (≤ cost/2 per
    /// conversion arc) to outweigh the static-cost gap between competing
    /// pairs, so it is unobservable when link-cost gaps dominate the
    /// conversion cost, and impossible when conversion is free (every
    /// average is exactly 0). This caveat is *enforced* by
    /// `wdm_sim::speculative::link_local_revalidation_sound`, the
    /// predicate every speculative engine gates rule 2 on: it requires
    /// zero-cost conversion (`zero_conversion_costs`) on top of this
    /// method and `distinct_static_costs`, so link-local revalidation is
    /// never consulted where the G′ averages can move.
    ///
    /// [`assign_wavelengths_on_path`]: wdm_core::optimal_slp::assign_wavelengths_on_path
    /// [`optimal_semilightpath`]: wdm_core::optimal_slp::optimal_semilightpath
    pub fn has_link_local_decisions(&self) -> bool {
        matches!(
            self,
            Policy::CostOnly | Policy::Unrefined | Policy::NodeDisjoint
        )
    }

    /// Computes a route for `(s, t)` without mutating `state`.
    ///
    /// One-shot convenience over [`Policy::route_ctx`] — builds a throwaway
    /// [`RouterCtx`] per call. Loops (the simulator, batch provisioning)
    /// should hold a context and call [`Policy::route_ctx`] instead.
    pub fn route(
        &self,
        net: &WdmNetwork,
        state: &ResidualState,
        s: NodeId,
        t: NodeId,
    ) -> Result<ProvisionedRoute, RoutingError> {
        self.route_ctx(&mut RouterCtx::new(), net, state, s, t)
    }

    /// Computes a route for `(s, t)` without mutating `state`, reusing the
    /// auxiliary-graph engines and search buffers in `ctx`. The §3.3/§4
    /// policies route through the incremental [`RouterCtx`] hot path; the
    /// baseline policies don't use auxiliary graphs and ignore `ctx`.
    ///
    /// When `ctx` carries a live [`Recorder`], every call emits the request
    /// outcome (admission or blocking cause), cost/hop histograms and a
    /// structured [`RouteTrace`]; with the default `NoopRecorder` all of
    /// that compiles away. When `ctx` carries a live [`Tracer`], every call
    /// opens a new span ordinal (`Tracer::begin_request`) and the pipeline
    /// records its phase spans into it; the *caller* owning the surrounding
    /// commit records the root `Phase::Request` span and any commit/abort
    /// spans, since routing alone can't see the decision's fate.
    pub fn route_ctx<R: Recorder, T: Tracer>(
        &self,
        ctx: &mut RouterCtx<R, T>,
        net: &WdmNetwork,
        state: &ResidualState,
        s: NodeId,
        t: NodeId,
    ) -> Result<ProvisionedRoute, RoutingError> {
        let t_pro0 = ctx.tracer().now_ns();
        let enabled = ctx.recorder().enabled();
        if enabled {
            ctx.begin_request();
        }
        ctx.tracer().begin_request();
        let start = enabled.then(std::time::Instant::now);
        // Recorder/tracer reset costs belong to Telemetry, not to a gap
        // between the daemon's epoch check and the first routing span.
        let t_pro1 = ctx.tracer().now_ns();
        ctx.tracer().record_span(Phase::Telemetry, t_pro0, t_pro1);
        let result = self.dispatch(ctx, net, state, s, t);
        if let Some(start) = start {
            // The recorder's own bookkeeping is serve-path wall time too;
            // self-measure it so trace attribution tiles the request.
            let t0 = ctx.tracer().now_ns();
            record_request(ctx, s, t, &result, start);
            ctx.tracer().record(Phase::Telemetry, t0);
        }
        result
    }

    fn dispatch<R: Recorder, T: Tracer>(
        &self,
        ctx: &mut RouterCtx<R, T>,
        net: &WdmNetwork,
        state: &ResidualState,
        s: NodeId,
        t: NodeId,
    ) -> Result<ProvisionedRoute, RoutingError> {
        match *self {
            Policy::CostOnly => {
                robust_route_ctx(ctx, net, state, s, t).map(|(r, _)| ProvisionedRoute::Protected(r))
            }
            Policy::LoadOnly { a } => find_two_paths_mincog_ctx(ctx, net, state, s, t, a)
                .map(|o| ProvisionedRoute::Protected(o.route)),
            Policy::Joint { a } => find_two_paths_joint_ctx(ctx, net, state, s, t, a)
                .map(|o| ProvisionedRoute::Protected(o.route)),
            Policy::JointAsPrinted { a } => {
                find_two_paths_joint_as_printed_ctx(ctx, net, state, s, t, a)
                    .map(|o| ProvisionedRoute::Protected(o.route))
            }
            Policy::TwoStep => {
                baselines::two_step_pair(net, state, s, t).map(ProvisionedRoute::Protected)
            }
            Policy::Unrefined => {
                baselines::suurballe_unrefined(net, state, s, t).map(ProvisionedRoute::Protected)
            }
            Policy::Ksp { k } => {
                baselines::ksp_pair(net, state, s, t, k).map(ProvisionedRoute::Protected)
            }
            Policy::NodeDisjoint => wdm_core::node_disjoint::find_node_disjoint(net, state, s, t)
                .map(ProvisionedRoute::Protected),
            Policy::PrimaryOnly => {
                baselines::primary_only(net, state, s, t).map(ProvisionedRoute::Unprotected)
            }
        }
    }
}

/// Records the outcome of one routing request (admission counters, blocking
/// cause, cost/hop histograms, structured trace). Only called when the
/// recorder is enabled.
fn record_request<R: Recorder, T: Tracer>(
    ctx: &RouterCtx<R, T>,
    s: NodeId,
    t: NodeId,
    result: &Result<ProvisionedRoute, RoutingError>,
    start: std::time::Instant,
) {
    let rec = ctx.recorder();
    rec.observe(Hist::RequestNanos, start.elapsed().as_nanos() as u64);
    match result {
        Ok(route) => {
            rec.add(Counter::RequestsRouted, 1);
            rec.observe(
                Hist::RouteCostMilli,
                (route.total_cost() * 1000.0).round() as u64,
            );
            let (primary, backup) = match route {
                ProvisionedRoute::Protected(r) => (&r.primary, Some(&r.backup)),
                ProvisionedRoute::Unprotected(p) => (p, None),
            };
            rec.observe(Hist::PrimaryHops, primary.len() as u64);
            if let Some(b) = backup {
                rec.observe(Hist::BackupHops, b.len() as u64);
            }
            let stats = ctx.request_stats();
            rec.trace(&RouteTrace {
                request_id: rec.next_request_id(),
                src: s.0,
                dst: t.0,
                primary_wavelengths: primary
                    .hops
                    .iter()
                    .map(|h| u32::from(h.wavelength.0))
                    .collect(),
                backup_wavelengths: backup
                    .map(|b| b.hops.iter().map(|h| u32::from(h.wavelength.0)).collect())
                    .unwrap_or_default(),
                primary_cost: primary.cost,
                backup_cost: backup.map_or(0.0, |b| b.cost),
                cache: stats.cache_outcome(),
                arena_allocs: ctx.request_arena_allocs(),
                search_ns: stats.search_ns,
            });
        }
        Err(e) => {
            rec.add(Counter::RequestsBlocked, 1);
            let cause = match e {
                RoutingError::DegenerateRequest => Counter::BlockedDegenerate,
                RoutingError::NoDisjointPair => Counter::BlockedNoDisjointPair,
                RoutingError::RefinementInfeasible => Counter::BlockedRefinement,
                RoutingError::LoadSearchExhausted => Counter::BlockedLoadSearch,
                RoutingError::Unreachable { .. } => Counter::BlockedUnreachable,
            };
            rec.add(cause, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::conversion::ConversionTable;
    use wdm_core::network::NetworkBuilder;

    fn diamond() -> WdmNetwork {
        let mut b = NetworkBuilder::new(4);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.1 }))
            .collect();
        b.add_link(n[0], n[1], 1.0);
        b.add_link(n[1], n[3], 1.0);
        b.add_link(n[0], n[2], 2.0);
        b.add_link(n[2], n[3], 2.0);
        b.build()
    }

    #[test]
    fn every_policy_routes_the_diamond() {
        let net = diamond();
        let st = ResidualState::fresh(&net);
        for p in [
            Policy::CostOnly,
            Policy::LoadOnly { a: 2.0 },
            Policy::Joint { a: 2.0 },
            Policy::TwoStep,
            Policy::Unrefined,
            Policy::Ksp { k: 8 },
            Policy::PrimaryOnly,
        ] {
            let r = p.route(&net, &st, NodeId(0), NodeId(3));
            assert!(r.is_ok(), "{} failed: {r:?}", p.name());
            let r = r.unwrap();
            match (&p, &r) {
                (Policy::PrimaryOnly, ProvisionedRoute::Unprotected(slp)) => {
                    assert_eq!(slp.cost, 2.0);
                }
                (Policy::PrimaryOnly, _) => panic!("primary-only must be unprotected"),
                (_, ProvisionedRoute::Protected(route)) => {
                    assert!(route.is_edge_disjoint());
                }
                (_, ProvisionedRoute::Unprotected(_)) => {
                    panic!("{} must be protected", p.name())
                }
            }
        }
    }

    #[test]
    fn occupy_release_roundtrip() {
        let net = diamond();
        let mut st = ResidualState::fresh(&net);
        let r = Policy::CostOnly
            .route(&net, &st, NodeId(0), NodeId(3))
            .unwrap();
        r.occupy(&net, &mut st).unwrap();
        assert!(st.network_load(&net) > 0.0);
        r.release(&mut st);
        assert_eq!(st.network_load(&net), 0.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Policy::Joint { a: 2.0 }.name(), "joint(4.2)");
        assert_eq!(Policy::PrimaryOnly.name(), "primary-only");
    }
}
