//! Discrete-event simulator for dynamic traffic in wide-area WDM networks.
//!
//! The paper's setting — "user connection requests arrive to and depart from
//! the network in a random manner" (§1) with single-link failures and
//! load-triggered reconfigurations — made measurable:
//!
//! * [`traffic`] — Poisson arrivals, exponential holding times, uniform
//!   random node pairs (the standard model of the paper's citations);
//! * [`policy`] — provisioning policies: the paper's §3.3 / §4.1 / §4.2
//!   algorithms plus the baseline strategies;
//! * [`provisioner`] — the provisioning service: live state + warm router
//!   context + journal behind the [`provisioner::Provisioner`] trait, the
//!   mutation lineage both the simulator and the `wdm serve` daemon drive;
//! * [`sim`] — the event loop: admission/blocking, wavelength occupancy,
//!   link-failure injection with *active* (instant backup switchover) vs
//!   *passive* (recompute on demand) recovery, and threshold-triggered
//!   reconfiguration with move accounting;
//! * [`metrics`] — blocking probability, route costs, recovery outcomes,
//!   reconfiguration counts, load distributions;
//! * [`parallel`] — rayon-powered replication sweeps (one immutable network
//!   shared across threads, one residual state per replication);
//! * [`speculative`] — optimistic parallel batch provisioning: windows of
//!   demands routed concurrently against a frozen snapshot, committed in
//!   demand order with conflict detection, bit-identical to the serial run;
//! * [`sharded`] — shard-parallel batch provisioning: a static topology
//!   partition gives each shard a worker with a long-lived state mirror;
//!   intra-shard demands route concurrently with no inter-shard
//!   synchronisation, cross-shard demands inline at their serial slot.
//!
//! Determinism: every run is a pure function of its [`sim::SimConfig`]
//! (including the seed); the parallel driver returns results in seed order.

pub mod batch;
pub mod events;
pub mod metrics;
pub mod parallel;
pub mod policy;
pub mod provisioner;
pub mod schedule;
pub mod sharded;
pub mod shared;
pub mod sim;
pub mod speculative;
pub mod traffic;

/// One-stop imports.
pub mod prelude {
    pub use crate::batch::{
        full_mesh_demands, provision_batch, provision_batch_journaled, BatchOrder, BatchOutcome,
        Demand,
    };
    pub use crate::metrics::{mean_std, Metrics, PolicyTelemetry};
    pub use crate::parallel::{
        replication_seeds, run_replications, run_replications_streaming, run_replications_telemetry,
    };
    pub use crate::policy::{Policy, ProvisionedRoute};
    pub use crate::provisioner::{Connection, NetProvisioner, Provisioner};
    pub use crate::schedule::{ConflictPartitioner, GroupPlan, ScheduleMode, DEFAULT_SHARDS};
    pub use crate::sharded::provision_batch_sharded;
    pub use crate::shared::{SharedBackupPool, SharedConnection, SharedProvisioner};
    pub use crate::sim::{
        run_batch, run_batch_journaled, run_batch_recorded, run_sim, run_sim_journaled,
        run_sim_recorded, BatchConfig, SimConfig, Simulator,
    };
    pub use crate::speculative::{
        distinct_static_costs, link_local_revalidation_sound, provision_batch_speculative,
        provision_batch_speculative_journaled, provision_batch_speculative_observed,
        provision_batch_speculative_scheduled, provision_batch_speculative_with_oracle,
        zero_conversion_costs, SpeculationStats,
    };
    pub use crate::traffic::{HoldingDist, PairSelection, TrafficModel};
    pub use wdm_core::journal::{EventSink, NetEvent, NoopSink, ReplayError, StateJournal, Txn};
    pub use wdm_core::predict::{
        AllConflictOracle, FootprintOracle, LocalityPredictor, NoConflictOracle,
    };
    pub use wdm_telemetry::{
        FlightAnnotation, FlightAnomaly, FlightDump, FlightRecord, FlightRecorder, ManualClock,
        MonotonicClock, NoopRecorder, NoopTracer, Phase, Recorder, SpanBuffer, SpanRecord,
        TelemetrySink, TelemetrySnapshot, Tracer,
    };
}
