//! Parallel replication driver.
//!
//! Simulation replications are embarrassingly parallel: the network is
//! shared immutably, each replication owns its residual state and RNG.
//! Rayon's `par_iter` handles the fan-out (the HPC-parallel idiom for this
//! workload); a `parking_lot`-guarded progress sink lets long sweeps report
//! liveness, and a crossbeam channel variant streams results as they land.

use crate::metrics::Metrics;
use crate::sim::{run_sim, run_sim_recorded, SimConfig};
use parking_lot::Mutex;
use rayon::prelude::*;
use wdm_core::network::WdmNetwork;
use wdm_telemetry::{TelemetrySink, TelemetrySnapshot};

/// SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom
/// number generators"): a bijective avalanche mix on `u64`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives `n` replication seeds from `base`. Seed `i` is a pure function
/// of `(base, i)`, so serial loops, parallel sweeps and resumed runs all see
/// the same stream — there is no hidden dependence on iteration order or
/// shard layout. Distinct bases give well-separated streams (SplitMix64
/// avalanches every input bit).
pub fn replication_seeds(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| splitmix64(base ^ splitmix64(i)))
        .collect()
}

/// Runs `cfg` once per seed in parallel; results are returned in seed order
/// (deterministic regardless of scheduling).
pub fn run_replications(net: &WdmNetwork, cfg: SimConfig, seeds: &[u64]) -> Vec<Metrics> {
    seeds
        .par_iter()
        .map(|&seed| run_sim(net, SimConfig { seed, ..cfg }))
        .collect()
}

/// As [`run_replications`], additionally collecting telemetry: each
/// replication records into its own private [`TelemetrySink`] (no cross-
/// thread contention beyond the rayon fan-out) and the per-shard snapshots
/// are folded in seed order. Snapshot merging is commutative, so the result
/// equals a serial run over the same seeds metric-for-metric (timing
/// histograms excepted — wall-clock durations are not seeded).
pub fn run_replications_telemetry(
    net: &WdmNetwork,
    cfg: SimConfig,
    seeds: &[u64],
) -> (Vec<Metrics>, TelemetrySnapshot) {
    let shards: Vec<(Metrics, TelemetrySnapshot)> = seeds
        .par_iter()
        .map(|&seed| {
            let sink = TelemetrySink::new();
            let m = run_sim_recorded(net, SimConfig { seed, ..cfg }, &sink);
            (m, sink.snapshot())
        })
        .collect();
    let mut metrics = Vec::with_capacity(shards.len());
    let mut telemetry = TelemetrySnapshot::default();
    for (m, snap) in shards {
        metrics.push(m);
        telemetry.merge(&snap);
    }
    (metrics, telemetry)
}

/// As [`run_replications`], invoking `progress(done, total)` after each
/// finished replication (callback may run on any worker thread).
pub fn run_replications_with_progress(
    net: &WdmNetwork,
    cfg: SimConfig,
    seeds: &[u64],
    progress: impl Fn(usize, usize) + Sync,
) -> Vec<Metrics> {
    let done = Mutex::new(0usize);
    seeds
        .par_iter()
        .map(|&seed| {
            let m = run_sim(net, SimConfig { seed, ..cfg });
            // Snapshot the counter and release the lock before calling out:
            // a slow (or lock-taking) callback must not serialise the other
            // workers' completions behind it.
            let d = {
                let mut d = done.lock();
                *d += 1;
                *d
            };
            progress(d, seeds.len());
            m
        })
        .collect()
}

/// Streams `(seed, Metrics)` pairs through a crossbeam channel as
/// replications complete (completion order), consuming them with `consume`
/// on the calling thread. Useful when replications are long and results
/// should be processed incrementally.
pub fn run_replications_streaming(
    net: &WdmNetwork,
    cfg: SimConfig,
    seeds: &[u64],
    mut consume: impl FnMut(u64, Metrics),
) {
    let (tx, rx) = crossbeam::channel::unbounded();
    // Crossbeam scoped threads: the consumer runs on the calling thread and
    // need not be Send; workers only share the immutable network.
    crossbeam::thread::scope(|scope| {
        for &seed in seeds {
            let tx = tx.clone();
            scope.spawn(move |_| {
                let m = run_sim(net, SimConfig { seed, ..cfg });
                // Receiver outlives the scope; send can only fail if the
                // consumer panicked, in which case dropping is fine.
                let _ = tx.send((seed, m));
            });
        }
        drop(tx);
        while let Ok((seed, m)) = rx.recv() {
            consume(seed, m);
        }
    })
    .expect("replication worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::traffic::TrafficModel;
    use wdm_core::network::NetworkBuilder;

    fn cfg() -> SimConfig {
        SimConfig {
            policy: Policy::CostOnly,
            traffic: TrafficModel::new(2.0, 5.0),
            duration: 50.0,
            failure_rate: 0.0,
            mean_repair: 1.0,
            reconfig_threshold: None,
            seed: 0,
            switchover_time: 0.001,
            setup_time_per_hop: 0.05,
        }
    }

    #[test]
    fn replication_seeds_depend_only_on_base_and_index() {
        let s = replication_seeds(42, 8);
        assert_eq!(s.len(), 8);
        // Pure function of (base, i): any prefix matches.
        assert_eq!(replication_seeds(42, 3)[..], s[..3]);
        // Distinct indices and distinct bases give distinct seeds.
        let mut uniq: std::collections::HashSet<u64> = s.iter().copied().collect();
        uniq.extend(replication_seeds(43, 8));
        assert_eq!(uniq.len(), 16);
    }

    #[test]
    fn telemetry_replications_keep_metrics_identical() {
        let net = NetworkBuilder::nsfnet(8).build();
        let seeds = replication_seeds(7, 3);
        let plain = run_replications(&net, cfg(), &seeds);
        let (with_telemetry, snap) = run_replications_telemetry(&net, cfg(), &seeds);
        assert_eq!(plain, with_telemetry, "telemetry must not perturb runs");
        let offered: u64 = plain.iter().map(|m| m.offered).sum();
        assert_eq!(snap.total_requests(), offered);
    }

    #[test]
    fn parallel_matches_serial() {
        let net = NetworkBuilder::nsfnet(8).build();
        let seeds = [1u64, 2, 3, 4];
        let par = run_replications(&net, cfg(), &seeds);
        for (i, &seed) in seeds.iter().enumerate() {
            let serial = run_sim(&net, SimConfig { seed, ..cfg() });
            assert_eq!(par[i], serial, "seed {seed}");
        }
    }

    #[test]
    fn progress_reports_every_completion() {
        let net = NetworkBuilder::nsfnet(4).build();
        let seeds = [1u64, 2, 3];
        let count = std::sync::atomic::AtomicUsize::new(0);
        let _ = run_replications_with_progress(&net, cfg(), &seeds, |_, total| {
            assert_eq!(total, 3);
            count.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn streaming_delivers_all_results() {
        let net = NetworkBuilder::nsfnet(4).build();
        let seeds = [5u64, 6, 7, 8];
        let mut got = Vec::new();
        run_replications_streaming(&net, cfg(), &seeds, |seed, m| {
            assert!(m.offered > 0);
            got.push(seed);
        });
        got.sort();
        assert_eq!(got, vec![5, 6, 7, 8]);
    }
}
