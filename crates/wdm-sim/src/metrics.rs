//! Simulation metrics: admission, cost, recovery, reconfiguration, load.

use wdm_core::load::LoadSnapshot;
use wdm_telemetry::TelemetrySnapshot;

/// Counters accumulated over one simulation run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Metrics {
    /// Requests offered.
    pub offered: u64,
    /// Requests admitted (routes established).
    pub admitted: u64,
    /// Requests blocked (no feasible route under the policy).
    pub blocked: u64,
    /// Sum of provisioned route costs (per Eq. 1, both legs for protected).
    pub total_route_cost: f64,
    /// Total wavelength conversions across provisioned legs.
    pub total_conversions: u64,
    /// Link failures injected.
    pub failures_injected: u64,
    /// Failures answered by an instant primary→backup switchover (the
    /// *active* approach's win).
    pub fast_switchovers: u64,
    /// Failures answered by computing a fresh route on demand (the *passive*
    /// approach; slower, may fail).
    pub passive_recoveries: u64,
    /// Connections dropped because no recovery route existed.
    pub recovery_failures: u64,
    /// Backup legs re-provisioned after a switchover or backup loss.
    pub backups_reprovisioned: u64,
    /// Total service-interruption time across recovery events (switchover
    /// time for active, per-hop setup time for passive re-establishment).
    pub recovery_time_sum: f64,
    /// Recovery events with a measured interruption time.
    pub recovery_events: u64,
    /// Reconfiguration events triggered by the load threshold.
    pub reconfig_events: u64,
    /// Connections re-routed during reconfigurations.
    pub reconfig_moved: u64,
    /// Network-load samples taken (at each arrival).
    pub load_samples: u64,
    /// Sum of sampled network loads.
    pub load_sum: f64,
    /// Peak sampled network load.
    pub peak_network_load: f64,
    /// Time integral of the network load `∫ρ(t)dt` over the horizon
    /// (divide by `sim_time` for the true time-average).
    pub load_time_integral: f64,
    /// Load distribution at the end of the run.
    pub final_snapshot: Option<LoadSnapshot>,
    /// Simulated time actually covered.
    pub sim_time: f64,
}

impl Metrics {
    /// Blocking probability `blocked / offered` (0 when nothing offered).
    pub fn blocking_probability(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.blocked as f64 / self.offered as f64
        }
    }

    /// Mean provisioned route cost per admitted request.
    pub fn mean_route_cost(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.total_route_cost / self.admitted as f64
        }
    }

    /// Mean sampled network load.
    pub fn mean_network_load(&self) -> f64 {
        if self.load_samples == 0 {
            0.0
        } else {
            self.load_sum / self.load_samples as f64
        }
    }

    /// Time-averaged network load `∫ρ(t)dt / T` — unbiased by the
    /// arrival-sampled [`Metrics::mean_network_load`].
    pub fn time_avg_network_load(&self) -> f64 {
        if self.sim_time <= 0.0 {
            0.0
        } else {
            self.load_time_integral / self.sim_time
        }
    }

    /// Mean service interruption per successful recovery.
    pub fn mean_recovery_time(&self) -> f64 {
        if self.recovery_events == 0 {
            0.0
        } else {
            self.recovery_time_sum / self.recovery_events as f64
        }
    }

    /// Fraction of failure-affected primaries recovered instantly.
    pub fn fast_recovery_ratio(&self) -> f64 {
        let total = self.fast_switchovers + self.passive_recoveries + self.recovery_failures;
        if total == 0 {
            0.0
        } else {
            self.fast_switchovers as f64 / total as f64
        }
    }
}

/// Telemetry aggregated per provisioning policy across replications.
///
/// [`Metrics`] deliberately stays telemetry-free (simulation results must be
/// bit-identical with and without a recorder attached); this type is the
/// side-channel that carries the merged [`TelemetrySnapshot`] of a policy's
/// replication sweep, e.g. one entry per policy row in an experiment table.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PolicyTelemetry {
    /// The policy's display name ([`crate::policy::Policy::name`]).
    pub policy: String,
    /// Replications folded into the snapshot.
    pub replications: u64,
    /// Merged counter/histogram totals across those replications.
    pub snapshot: TelemetrySnapshot,
}

impl PolicyTelemetry {
    /// An empty aggregate for `policy`.
    pub fn new(policy: &str) -> Self {
        PolicyTelemetry {
            policy: policy.to_string(),
            replications: 0,
            snapshot: TelemetrySnapshot::default(),
        }
    }

    /// Folds one replication's snapshot into the aggregate.
    pub fn absorb(&mut self, snapshot: &TelemetrySnapshot) {
        self.replications += 1;
        self.snapshot.merge(snapshot);
    }

    /// Folds a whole sweep (e.g. another shard's aggregate) into this one.
    /// Both sides must describe the same policy.
    pub fn merge(&mut self, other: &PolicyTelemetry) {
        debug_assert_eq!(self.policy, other.policy, "merging different policies");
        self.replications += other.replications;
        self.snapshot.merge(&other.snapshot);
    }

    /// Blocking probability as seen by the telemetry counters.
    pub fn blocking_probability(&self) -> f64 {
        let total = self.snapshot.total_requests();
        if total == 0 {
            0.0
        } else {
            let blocked = self
                .snapshot
                .counters
                .get("requests_blocked")
                .copied()
                .unwrap_or(0);
            blocked as f64 / total as f64
        }
    }
}

/// The Erlang-B blocking probability for offered load `erlangs` over `c`
/// channels — the analytic ground truth for an M/M/c/c loss system.
/// Computed by the standard stable recurrence
/// `B(0) = 1`, `B(k) = A·B(k−1) / (k + A·B(k−1))`.
///
/// Used to validate the simulator: an unprotected single-fibre network is
/// exactly an M/M/c/c system, so its measured blocking must match this
/// formula (see the `erlang_b` tests).
pub fn erlang_b(erlangs: f64, c: usize) -> f64 {
    assert!(erlangs >= 0.0);
    let mut b = 1.0;
    for k in 1..=c {
        b = erlangs * b / (k as f64 + erlangs * b);
    }
    b
}

/// Mean and sample standard deviation of a metric across replications.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let m = Metrics {
            offered: 10,
            admitted: 8,
            blocked: 2,
            total_route_cost: 40.0,
            load_samples: 4,
            load_sum: 2.0,
            fast_switchovers: 3,
            passive_recoveries: 1,
            recovery_failures: 1,
            ..Default::default()
        };
        assert_eq!(m.blocking_probability(), 0.2);
        assert_eq!(m.mean_route_cost(), 5.0);
        assert_eq!(m.mean_network_load(), 0.5);
        assert_eq!(m.fast_recovery_ratio(), 0.6);
    }

    #[test]
    fn zero_division_guards() {
        let m = Metrics::default();
        assert_eq!(m.blocking_probability(), 0.0);
        assert_eq!(m.mean_route_cost(), 0.0);
        assert_eq!(m.mean_network_load(), 0.0);
        assert_eq!(m.fast_recovery_ratio(), 0.0);
    }

    #[test]
    fn erlang_b_known_values() {
        // Classic table values.
        assert!((erlang_b(1.0, 1) - 0.5).abs() < 1e-12);
        assert!((erlang_b(0.0, 4) - 0.0).abs() < 1e-12);
        // A = 5 Erlang, c = 10: B ≈ 0.0184.
        assert!((erlang_b(5.0, 10) - 0.0184).abs() < 5e-4);
        // Monotone in load, antitone in channels.
        assert!(erlang_b(8.0, 10) > erlang_b(5.0, 10));
        assert!(erlang_b(5.0, 12) < erlang_b(5.0, 10));
    }

    #[test]
    fn policy_telemetry_aggregates_and_merges() {
        use wdm_telemetry::{Counter, Recorder, TelemetrySink};
        let sink = TelemetrySink::new();
        sink.add(Counter::RequestsRouted, 3);
        sink.add(Counter::RequestsBlocked, 1);
        let mut agg = PolicyTelemetry::new("joint(4.2)");
        agg.absorb(&sink.snapshot());
        agg.absorb(&sink.snapshot());
        assert_eq!(agg.replications, 2);
        assert_eq!(agg.snapshot.counters["requests_routed"], 6);
        assert_eq!(agg.blocking_probability(), 0.25);
        let mut total = PolicyTelemetry::new("joint(4.2)");
        total.merge(&agg);
        assert_eq!(total, agg);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
    }
}
