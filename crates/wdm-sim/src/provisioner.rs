//! The provisioning service: one mutation lineage — live [`ResidualState`],
//! warm [`RouterCtx`], journal, connection table — behind a narrow
//! interface both the discrete-event [`Simulator`] and the `wdm serve`
//! daemon consume.
//!
//! [`NetProvisioner`] owns everything a lightpath service mutates when a
//! request arrives or departs. The [`Provisioner`] trait is the service
//! contract: route computation ([`Provisioner::route`]) is separated from
//! the commit ([`Provisioner::commit`]) so callers can time, account or
//! reject between the two, and [`NetProvisioner::try_commit`] adds the
//! optimistic variant the daemon needs — a [`Txn`]-guarded occupy that
//! rolls back atomically when a concurrently committed mutation stole a
//! channel, instead of panicking like the single-threaded contract does.
//!
//! Every successful mutation is appended to the generic [`EventSink`]
//! journal in the same order the state saw it, so a journal replayed over
//! the initial checkpoint reproduces the live state bit-identically —
//! the invariant `wdm replay --verify` (and the daemon's write-ahead log)
//! is built on.
//!
//! [`Simulator`]: crate::sim::Simulator

use crate::policy::{Policy, ProvisionedRoute};
use std::collections::HashMap;
use wdm_core::aux_engine::RouterCtx;
use wdm_core::error::RoutingError;
use wdm_core::journal::{EventSink, NetEvent, NoopSink, Txn};
use wdm_core::network::{ResidualState, StateError, WdmNetwork};
use wdm_core::semilightpath::Hop;
use wdm_graph::{EdgeId, NodeId};
use wdm_telemetry::{NoopRecorder, NoopTracer, Recorder, Tracer};

/// One live connection: endpoints plus the channels it holds.
#[derive(Debug, Clone)]
pub struct Connection {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The provisioned route (primary + backup, or unprotected).
    pub route: ProvisionedRoute,
}

/// The service contract of a lightpath provisioner: compute routes, commit
/// and tear down connections, mutate link health, and expose the audit
/// surface (journal sequence, semantic hash).
///
/// Implementors keep the journal invariant: every successful mutation is
/// recorded in state order, so replay over the initial state reproduces
/// the live state.
pub trait Provisioner {
    /// Computes a route for `(s, t)` against the current state without
    /// mutating anything.
    fn route(&mut self, s: NodeId, t: NodeId) -> Result<ProvisionedRoute, RoutingError>;

    /// Commits a route computed against the *current* state: occupies its
    /// channels, journals the provision and registers the connection.
    /// Returns the connection id.
    ///
    /// # Panics
    /// If the route no longer fits the state (single-lineage callers
    /// compute and commit back-to-back, so a misfit is a logic error; use
    /// [`NetProvisioner::try_commit`] when the state may have moved).
    fn commit(&mut self, s: NodeId, t: NodeId, route: ProvisionedRoute) -> u64;

    /// Routes and commits in one step.
    fn provision(&mut self, s: NodeId, t: NodeId) -> Result<u64, RoutingError> {
        let route = self.route(s, t)?;
        Ok(self.commit(s, t, route))
    }

    /// Tears down connection `id`, releasing its channels and journaling
    /// the teardown. Returns the released route, or `None` for an unknown
    /// id.
    fn teardown(&mut self, id: u64) -> Option<ProvisionedRoute>;

    /// Fails a link. Returns `false` (and journals nothing) when the link
    /// is already down.
    fn fail_link(&mut self, link: EdgeId) -> bool;

    /// Repairs a link, journaling unconditionally (repairing a healthy
    /// link is a recorded no-op, mirroring the state mutator). Returns
    /// whether the link had been failed.
    fn repair_link(&mut self, link: EdgeId) -> bool;

    /// Number of live connections.
    fn active_connections(&self) -> usize;

    /// Journal events recorded so far.
    fn journal_seq(&self) -> u64;

    /// Semantic hash of the current state (see
    /// [`ResidualState::semantic_hash`]).
    fn semantic_hash(&self) -> u64;
}

/// The concrete provisioning service over one network.
///
/// Generic exactly like [`Simulator`](crate::sim::Simulator): telemetry
/// [`Recorder`], lifecycle [`EventSink`] journal, span [`Tracer`] — all
/// defaulting to the zero-cost no-ops.
pub struct NetProvisioner<
    'a,
    R: Recorder = NoopRecorder,
    J: EventSink = NoopSink,
    T: Tracer = NoopTracer,
> {
    net: &'a WdmNetwork,
    policy: Policy,
    state: ResidualState,
    ctx: RouterCtx<R, T>,
    journal: J,
    journal_seq: u64,
    connections: HashMap<u64, Connection>,
    next_conn: u64,
}

impl<'a> NetProvisioner<'a> {
    /// A fresh un-instrumented provisioner over `net`.
    pub fn new(net: &'a WdmNetwork, policy: Policy) -> Self {
        Self::with_parts(
            net,
            policy,
            ResidualState::fresh(net),
            RouterCtx::new(),
            NoopSink,
        )
    }
}

impl<'a, R: Recorder, J: EventSink, T: Tracer> NetProvisioner<'a, R, J, T> {
    /// Assembles a provisioner from explicit parts (the simulator and the
    /// daemon both start from a non-default state/context/journal).
    pub fn with_parts(
        net: &'a WdmNetwork,
        policy: Policy,
        state: ResidualState,
        ctx: RouterCtx<R, T>,
        journal: J,
    ) -> Self {
        Self {
            net,
            policy,
            state,
            ctx,
            journal,
            journal_seq: 0,
            connections: HashMap::new(),
            next_conn: 0,
        }
    }

    /// The network this service provisions on.
    pub fn net(&self) -> &'a WdmNetwork {
        self.net
    }

    /// The provisioning policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The live residual state.
    pub fn state(&self) -> &ResidualState {
        &self.state
    }

    /// Consumes the service, returning the final state (the ground truth a
    /// journal replay is verified against).
    pub fn into_state(self) -> ResidualState {
        self.state
    }

    /// The router context (tracer/recorder access for callers timing their
    /// own commit spans).
    pub fn ctx(&self) -> &RouterCtx<R, T> {
        &self.ctx
    }

    /// Mutable router context access.
    pub fn ctx_mut(&mut self) -> &mut RouterCtx<R, T> {
        &mut self.ctx
    }

    /// Drops all warm engine state (required after any clock regression a
    /// caller performed on the state behind this context's back).
    pub fn invalidate_ctx(&mut self) {
        self.ctx.invalidate();
    }

    /// Whether the journal actually records events.
    pub fn journal_enabled(&self) -> bool {
        self.journal.enabled()
    }

    /// Direct journal access — for sinks with out-of-band records beyond
    /// the [`NetEvent`] stream (the daemon's write-ahead log interleaves
    /// periodic state checkpoints between events).
    pub fn journal_mut(&mut self) -> &mut J {
        &mut self.journal
    }

    /// Read access to a live connection.
    pub fn connection(&self, id: u64) -> Option<&Connection> {
        self.connections.get(&id)
    }

    /// Splits the service into the pieces a direct routing call needs:
    /// mutable context + shared state (callers inside this crate run
    /// policies and transactions against the pair).
    pub(crate) fn ctx_and_state_mut(&mut self) -> (&mut RouterCtx<R, T>, &mut ResidualState) {
        (&mut self.ctx, &mut self.state)
    }

    /// Mutable state access for the simulator's recovery/reconfiguration
    /// sweeps (which journal through [`Self::journal_event`] themselves).
    pub(crate) fn state_mut(&mut self) -> &mut ResidualState {
        &mut self.state
    }

    /// Mutable connection-table access for the simulator's recovery paths.
    pub(crate) fn connections_mut(&mut self) -> &mut HashMap<u64, Connection> {
        &mut self.connections
    }

    /// Shared connection-table access.
    pub fn connections(&self) -> &HashMap<u64, Connection> {
        &self.connections
    }

    /// Appends one event to the journal, advancing the sequence counter.
    /// All journal writes go through here (call sites gate payload
    /// construction on [`Self::journal_enabled`]).
    pub(crate) fn journal_event(&mut self, event: NetEvent) {
        self.journal_seq += 1;
        self.journal.record(event);
    }

    /// Optimistic commit for concurrent callers: occupies the route's
    /// channels inside a [`Txn`], so a conflict with a mutation that
    /// landed since the route was computed rolls the state back exactly
    /// and returns the error instead of panicking.
    ///
    /// On `Err` the rollback has regressed the change clocks; this
    /// context is invalidated here, but any *other* warm context that
    /// observed the state (daemon worker pools) must be invalidated by
    /// the caller before it routes again.
    pub fn try_commit(
        &mut self,
        s: NodeId,
        t: NodeId,
        route: ProvisionedRoute,
    ) -> Result<u64, StateError> {
        let hops = route.channels();
        let mut txn = Txn::begin(&mut self.state);
        if let Err(err) = txn.occupy_hops(self.net, &hops) {
            txn.rollback();
            self.ctx.invalidate();
            return Err(err);
        }
        txn.commit();
        Ok(self.register(s, t, route, hops))
    }

    /// Registers an already-occupied route: journal + connection table.
    fn register(&mut self, s: NodeId, t: NodeId, route: ProvisionedRoute, hops: Vec<Hop>) -> u64 {
        let id = self.next_conn;
        self.next_conn += 1;
        if self.journal.enabled() {
            self.journal_event(NetEvent::Provision { id, channels: hops });
        }
        self.connections.insert(
            id,
            Connection {
                src: s,
                dst: t,
                route,
            },
        );
        id
    }
}

impl<'a, R: Recorder, J: EventSink, T: Tracer> Provisioner for NetProvisioner<'a, R, J, T> {
    fn route(&mut self, s: NodeId, t: NodeId) -> Result<ProvisionedRoute, RoutingError> {
        self.policy
            .route_ctx(&mut self.ctx, self.net, &self.state, s, t)
    }

    fn commit(&mut self, s: NodeId, t: NodeId, route: ProvisionedRoute) -> u64 {
        route
            .occupy(self.net, &mut self.state)
            .expect("route computed against current state must occupy");
        let hops = if self.journal.enabled() {
            route.channels()
        } else {
            Vec::new()
        };
        self.register(s, t, route, hops)
    }

    fn teardown(&mut self, id: u64) -> Option<ProvisionedRoute> {
        let c = self.connections.remove(&id)?;
        c.route.release(&mut self.state);
        if self.journal.enabled() {
            self.journal_event(NetEvent::Teardown {
                id,
                channels: c.route.channels(),
            });
        }
        Some(c.route)
    }

    fn fail_link(&mut self, link: EdgeId) -> bool {
        if self.state.is_failed(link) {
            return false;
        }
        self.state.fail_link(link);
        if self.journal.enabled() {
            self.journal_event(NetEvent::FailLink { link });
        }
        true
    }

    fn repair_link(&mut self, link: EdgeId) -> bool {
        let was_failed = self.state.is_failed(link);
        self.state.repair_link(link);
        if self.journal.enabled() {
            self.journal_event(NetEvent::RepairLink { link });
        }
        was_failed
    }

    fn active_connections(&self) -> usize {
        self.connections.len()
    }

    fn journal_seq(&self) -> u64 {
        self.journal_seq
    }

    fn semantic_hash(&self) -> u64 {
        self.state.semantic_hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::journal::StateJournal;
    use wdm_core::network::NetworkBuilder;

    fn nsfnet() -> WdmNetwork {
        NetworkBuilder::nsfnet(8).build()
    }

    #[test]
    fn provision_teardown_roundtrip_restores_load() {
        let net = nsfnet();
        let mut p = NetProvisioner::new(&net, Policy::CostOnly);
        let id = p.provision(NodeId(0), NodeId(9)).expect("routable");
        assert_eq!(p.active_connections(), 1);
        assert!(p.state().network_load(&net) > 0.0);
        let conn = p.connection(id).expect("registered");
        assert_eq!((conn.src, conn.dst), (NodeId(0), NodeId(9)));
        assert!(p.teardown(id).is_some());
        assert!(p.teardown(id).is_none(), "double teardown is a miss");
        assert_eq!(p.state().network_load(&net), 0.0);
        assert_eq!(p.active_connections(), 0);
    }

    #[test]
    fn journaled_lifecycle_replays_bit_identically() {
        let net = nsfnet();
        let mut journal = StateJournal::new(ResidualState::fresh(&net));
        let final_hash;
        {
            let mut p = NetProvisioner::with_parts(
                &net,
                Policy::CostOnly,
                ResidualState::fresh(&net),
                RouterCtx::new(),
                &mut journal,
            );
            let a = p.provision(NodeId(0), NodeId(9)).unwrap();
            let _b = p.provision(NodeId(3), NodeId(11)).unwrap();
            assert!(p.fail_link(EdgeId(0)));
            assert!(!p.fail_link(EdgeId(0)), "second failure is a no-op");
            assert!(p.repair_link(EdgeId(0)));
            p.teardown(a);
            assert_eq!(p.journal_seq(), 5);
            final_hash = p.semantic_hash();
        }
        let replayed = journal.replay(&net).expect("replay");
        assert_eq!(replayed.semantic_hash(), final_hash);
    }

    #[test]
    fn try_commit_rejects_conflicts_and_rolls_back() {
        let net = nsfnet();
        let mut p = NetProvisioner::new(&net, Policy::CostOnly);
        let route = p.route(NodeId(0), NodeId(9)).expect("routable");
        // Steal one of the route's channels behind the router's back.
        let hop = route.channels()[0];
        p.state_mut()
            .occupy(&net, hop.edge, hop.wavelength)
            .unwrap();
        let before = p.state().clone();
        let err = p
            .try_commit(NodeId(0), NodeId(9), route.clone())
            .expect_err("stolen channel must conflict");
        assert_eq!(err, StateError::AlreadyUsed);
        assert_eq!(p.state(), &before, "conflict rolled back exactly");
        assert_eq!(p.active_connections(), 0);
        // Releasing the stolen channel makes the same route commit.
        p.state_mut().release(hop.edge, hop.wavelength).unwrap();
        let id = p
            .try_commit(NodeId(0), NodeId(9), route)
            .expect("now conflict-free");
        assert_eq!(p.connection(id).map(|c| c.src), Some(NodeId(0)));
    }
}
