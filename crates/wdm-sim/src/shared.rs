//! Shared backup protection (extension).
//!
//! The paper reserves a *dedicated* backup semilightpath per connection —
//! simple, but it doubles the capacity bill. Under the single-link-failure
//! model the paper assumes, two connections whose **primaries are
//! edge-disjoint** can never need their backups at the same time, so their
//! backups may share wavelength channels. This module implements that
//! 1:N shared protection on top of the §3.3 route finder:
//!
//! * [`SharedBackupPool`] tracks, per `(link, wavelength)` backup channel,
//!   which connections share it and the union of primary links they
//!   protect; a new connection may join iff its primary is edge-disjoint
//!   from every current sharer's primary.
//! * [`SharedProvisioner`] provisions connections end to end: the §3.3
//!   pipeline chooses the two paths, the primary takes dedicated channels,
//!   and the backup's wavelengths are re-assigned by a sharing-aware DP
//!   that prefers joinable channels (zero marginal capacity) over fresh
//!   ones.
//!
//! The `exp_shared_backup` binary measures the capacity savings against
//! dedicated protection on batch workloads.

use std::collections::HashMap;
use wdm_core::aux_engine::RouterCtx;
use wdm_core::disjoint::robust_route_ctx;
use wdm_core::error::RoutingError;
use wdm_core::journal::{EventSink, NetEvent, NoopSink};
use wdm_core::network::{ResidualState, WdmNetwork};
use wdm_core::semilightpath::{Hop, Semilightpath};
use wdm_core::wavelength::{Wavelength, WavelengthSet};
use wdm_graph::{EdgeId, NodeId};
use wdm_telemetry::{
    Counter, FlightRecorder, Hist, NoopRecorder, NoopTracer, Phase, Recorder, Tracer,
};

/// One shared backup channel: the connections using it and the union of
/// the primary links it protects.
#[derive(Debug, Clone, Default)]
struct ChannelSharers {
    /// Connection ids sharing this channel.
    conns: Vec<u64>,
    /// Union of all sharers' primary links (failure of any of these claims
    /// the channel).
    protected: Vec<EdgeId>,
}

/// Registry of backup-channel reservations with sharing.
#[derive(Debug, Clone, Default)]
pub struct SharedBackupPool {
    /// `(link, λ)` → sharers.
    channels: HashMap<(EdgeId, u8), ChannelSharers>,
    /// Per connection: the backup hops it reserved (for release).
    by_conn: HashMap<u64, Vec<Hop>>,
}

impl SharedBackupPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `(e, λ)` is reserved by any backup.
    pub fn is_reserved(&self, e: EdgeId, l: Wavelength) -> bool {
        self.channels.contains_key(&(e, l.0))
    }

    /// Whether a connection with `primary_edges` may join `(e, λ)`:
    /// unreserved, or reserved only by sharers whose primaries are disjoint
    /// from this one.
    pub fn can_use(&self, e: EdgeId, l: Wavelength, primary_edges: &[EdgeId]) -> bool {
        match self.channels.get(&(e, l.0)) {
            None => true,
            Some(sh) => !sh.protected.iter().any(|pe| primary_edges.contains(pe)),
        }
    }

    /// Whether joining `(e, λ)` consumes no new capacity (already reserved).
    pub fn is_shareable(&self, e: EdgeId, l: Wavelength, primary_edges: &[EdgeId]) -> bool {
        match self.channels.get(&(e, l.0)) {
            None => false,
            Some(sh) => !sh.protected.iter().any(|pe| primary_edges.contains(pe)),
        }
    }

    /// Registers `conn`'s backup hops, protecting `primary_edges`.
    pub fn reserve(&mut self, conn: u64, hops: &[Hop], primary_edges: &[EdgeId]) {
        for h in hops {
            let sh = self.channels.entry((h.edge, h.wavelength.0)).or_default();
            debug_assert!(
                !sh.protected.iter().any(|pe| primary_edges.contains(pe)),
                "sharing violation: joint primary link"
            );
            sh.conns.push(conn);
            sh.protected.extend_from_slice(primary_edges);
        }
        self.by_conn.insert(conn, hops.to_vec());
    }

    /// Releases all backup reservations of `conn` (rebuilding the protected
    /// unions of channels it shared). Returns the hops it held.
    pub fn release(&mut self, conn: u64, primaries: &HashMap<u64, Vec<EdgeId>>) -> Vec<Hop> {
        let hops = self.by_conn.remove(&conn).unwrap_or_default();
        for h in &hops {
            let key = (h.edge, h.wavelength.0);
            if let Some(sh) = self.channels.get_mut(&key) {
                sh.conns.retain(|&c| c != conn);
                if sh.conns.is_empty() {
                    self.channels.remove(&key);
                } else {
                    // Rebuild the protected union from the remaining sharers.
                    let mut protected = Vec::new();
                    for c in &sh.conns {
                        if let Some(p) = primaries.get(c) {
                            protected.extend_from_slice(p);
                        }
                    }
                    sh.protected = protected;
                }
            }
        }
        hops
    }

    /// Number of distinct backup channels currently reserved.
    pub fn reserved_channels(&self) -> usize {
        self.channels.len()
    }

    /// Total backup hops across connections (≥ reserved channels; the gap
    /// is the sharing win).
    pub fn total_backup_hops(&self) -> usize {
        self.by_conn.values().map(|h| h.len()).sum()
    }

    /// Checks the sharing invariant: on every reserved channel, the sharers'
    /// primaries are pairwise edge-disjoint (no single link failure can
    /// claim the channel twice). Returns the number of channels checked.
    ///
    /// `primaries` maps live connection ids to their primary edge sets.
    pub fn validate(&self, primaries: &HashMap<u64, Vec<EdgeId>>) -> Result<usize, String> {
        // HashMap iteration order is random per instance; check channels in
        // sorted order so the *first* reported violation is deterministic.
        let mut keys: Vec<(EdgeId, u8)> = self.channels.keys().copied().collect();
        keys.sort_unstable_by_key(|&(e, l)| (e.index(), l));
        for (e, l) in keys {
            let sh = &self.channels[&(e, l)];
            for (i, a) in sh.conns.iter().enumerate() {
                let pa = primaries
                    .get(a)
                    .ok_or_else(|| format!("sharer {a} has no primary registered"))?;
                for b in &sh.conns[i + 1..] {
                    let pb = primaries
                        .get(b)
                        .ok_or_else(|| format!("sharer {b} has no primary registered"))?;
                    if pa.iter().any(|x| pb.contains(x)) {
                        return Err(format!(
                            "channel ({e:?}, λ{l}) shared by {a} and {b} with overlapping primaries"
                        ));
                    }
                }
            }
        }
        Ok(self.channels.len())
    }
}

/// A routing decision not yet committed: the find stage's output.
struct FoundConnection {
    primary: Semilightpath,
    primary_edges: Vec<EdgeId>,
    backup: Semilightpath,
}

/// A provisioned shared-protection connection.
#[derive(Debug, Clone)]
pub struct SharedConnection {
    /// Connection id.
    pub id: u64,
    /// The working path (dedicated channels).
    pub primary: Semilightpath,
    /// The protection path (channels possibly shared).
    pub backup: Semilightpath,
    /// How many of the backup's hops joined an existing reservation.
    pub shared_hops: usize,
}

/// End-to-end provisioner with shared backups.
///
/// Working channels live in the usual [`ResidualState`]; backup
/// reservations live in the [`SharedBackupPool`]. A channel is available to
/// a *primary* only if it is both unused and unreserved; a *backup* may
/// additionally join compatible reservations.
///
/// The optional journal records the **working-state lineage only**:
/// a [`NetEvent::Provision`] per committed primary and a
/// [`NetEvent::Teardown`] per release. Pool reservations are *not*
/// journaled — they live outside the [`ResidualState`] the journal's
/// checkpoint/replay contract covers — so replaying a shared-provisioner
/// journal reconstructs `working`, not the pool overlay. Two observability
/// channels cover that gap: every pool mutation bumps
/// [`Counter::PoolReserve`] / [`Counter::PoolRelease`], and with a
/// [`FlightRecorder`] attached each mutation also leaves an annotation
/// stamped with the provisioner's own journal sequence number, so a
/// replay consumer can line the un-journaled pool activity up against the
/// working-state lineage it *can* reconstruct.
pub struct SharedProvisioner<'a, R: Recorder = NoopRecorder, J: EventSink = NoopSink> {
    net: &'a WdmNetwork,
    recorder: R,
    journal: J,
    /// Channels taken by primaries (dedicated).
    pub working: ResidualState,
    /// Backup reservations.
    pub pool: SharedBackupPool,
    /// Primary edge sets per live connection (for release-time rebuilds).
    primaries: HashMap<u64, Vec<EdgeId>>,
    next_id: u64,
    /// Events appended to `journal` so far (annotation correlation).
    journal_seq: u64,
    /// Optional flight recorder receiving pool-mutation annotations.
    flight: Option<&'a FlightRecorder>,
}

impl<'a> SharedProvisioner<'a> {
    /// A fresh provisioner over `net` (no telemetry).
    pub fn new(net: &'a WdmNetwork) -> Self {
        Self::with_recorder(net, NoopRecorder)
    }
}

impl<'a, R: Recorder> SharedProvisioner<'a, R> {
    /// As [`SharedProvisioner::new`], recording telemetry through
    /// `recorder` (shared vs fresh backup channels, route searches).
    pub fn with_recorder(net: &'a WdmNetwork, recorder: R) -> Self {
        Self::with_recorder_and_journal(net, recorder, NoopSink)
    }
}

impl<'a, R: Recorder, J: EventSink> SharedProvisioner<'a, R, J> {
    /// Checks the pool's sharing invariant against the live primaries.
    pub fn validate(&self) -> Result<usize, String> {
        self.pool.validate(&self.primaries)
    }

    /// As [`SharedProvisioner::with_recorder`], additionally appending the
    /// working-state lineage (primary occupies and releases) to `journal`.
    pub fn with_recorder_and_journal(net: &'a WdmNetwork, recorder: R, journal: J) -> Self {
        Self {
            net,
            recorder,
            journal,
            working: ResidualState::fresh(net),
            pool: SharedBackupPool::new(),
            primaries: HashMap::new(),
            next_id: 0,
            journal_seq: 0,
            flight: None,
        }
    }

    /// Attaches a flight recorder: every pool reserve/release from now on
    /// leaves an annotation correlated with the journal sequence number,
    /// covering the pool's un-journaled mutations (see the type docs).
    pub fn attach_flight_recorder(&mut self, flight: &'a FlightRecorder) {
        self.flight = Some(flight);
    }

    /// The state a *routing* decision must see: working channels plus all
    /// backup reservations marked used (so primaries avoid both).
    fn routing_state(&self) -> ResidualState {
        let mut st = self.working.clone();
        // Sorted so the clone's per-link change clocks are stamped in a
        // deterministic order (HashMap key order is random per instance).
        let mut reserved: Vec<(EdgeId, u8)> = self.pool.channels.keys().copied().collect();
        reserved.sort_unstable_by_key(|&(e, l)| (e.index(), l));
        for (e, l) in reserved {
            // Reserved backup channels may already coincide with working
            // occupation only transiently; ignore double-set errors.
            let _ = st.occupy(self.net, e, Wavelength(l));
        }
        st
    }

    /// Provisions a protected connection `s → t`. The §3.3 finder chooses
    /// the two edge-disjoint paths on the fully-reserved view; the backup's
    /// wavelengths are then re-assigned by the sharing-aware DP.
    pub fn provision(&mut self, s: NodeId, t: NodeId) -> Result<SharedConnection, RoutingError> {
        self.provision_traced(s, t, &NoopTracer)
    }

    /// As [`SharedProvisioner::provision`], recording spans on `tracer`:
    /// one root [`Phase::Request`] span per call, the routing sub-phases
    /// underneath it, and a [`Phase::Commit`] span around the working/pool
    /// mutation when the request succeeds.
    pub fn provision_traced<T: Tracer>(
        &mut self,
        s: NodeId,
        t: NodeId,
        tracer: &T,
    ) -> Result<SharedConnection, RoutingError> {
        let tracing = tracer.enabled();
        tracer.begin_request();
        let req_t0 = tracer.now_ns();
        let routing_view = self.routing_state();
        let mut ctx = RouterCtx::with_recorder_and_tracer(&self.recorder, tracer);
        let found = self.find_on(&routing_view, &mut ctx, s, t);
        let out = found.and_then(|f| {
            let commit_t0 = tracer.now_ns();
            let conn = self.commit_found(f);
            if tracing {
                tracer.record(Phase::Commit, commit_t0);
            }
            conn
        });
        if tracing {
            tracer.record(Phase::Request, req_t0);
        }
        out
    }

    /// The pure *find* stage of [`SharedProvisioner::provision`]: the §3.3
    /// route pair on `routing_view` plus the sharing-aware backup
    /// assignment against the current pool, with no mutation. Split out so
    /// the speculative batch path can run it against a frozen view on
    /// worker contexts.
    fn find_on<R2: Recorder, T2: Tracer>(
        &self,
        routing_view: &ResidualState,
        ctx: &mut RouterCtx<R2, T2>,
        s: NodeId,
        t: NodeId,
    ) -> Result<FoundConnection, RoutingError> {
        let (route, _) = robust_route_ctx(ctx, self.net, routing_view, s, t)?;
        let primary = route.primary;
        let primary_edges: Vec<EdgeId> = primary.edges().collect();

        // Re-assign backup wavelengths: a channel is usable if it is free of
        // working traffic AND (unreserved OR joinable); joinable channels
        // cost 0 capacity, fresh ones cost 1. Minimise capacity, then count
        // shared hops.
        let backup_edges: Vec<EdgeId> = route.backup.edges().collect();
        let backup = self
            .assign_backup(&backup_edges, s, &primary_edges)
            .ok_or(RoutingError::RefinementInfeasible)?;
        Ok(FoundConnection {
            primary,
            primary_edges,
            backup,
        })
    }

    /// The *commit* stage of [`SharedProvisioner::provision`]: the primary
    /// occupies working channels, the backup reserves (possibly shared)
    /// pool channels.
    fn commit_found(&mut self, found: FoundConnection) -> Result<SharedConnection, RoutingError> {
        let FoundConnection {
            primary,
            primary_edges,
            backup,
        } = found;
        primary
            .occupy(self.net, &mut self.working)
            .map_err(|_| RoutingError::RefinementInfeasible)?;
        if self.journal.enabled() {
            self.journal_seq += 1;
            self.journal.record(NetEvent::Provision {
                id: self.next_id,
                channels: primary.hops.clone(),
            });
        }
        let shared_hops = backup
            .hops
            .iter()
            .filter(|h| self.pool.is_shareable(h.edge, h.wavelength, &primary_edges))
            .count();
        if self.recorder.enabled() {
            self.recorder
                .add(Counter::SharedBackupChannelsShared, shared_hops as u64);
            self.recorder.add(
                Counter::SharedBackupChannelsFresh,
                (backup.hops.len() - shared_hops) as u64,
            );
        }
        if self.recorder.enabled() {
            self.recorder.add(Counter::PoolReserve, 1);
        }
        if let Some(fr) = self.flight {
            fr.annotate(
                self.journal_seq,
                format!(
                    "pool reserve conn={} hops={} shared={shared_hops}",
                    self.next_id,
                    backup.hops.len()
                ),
            );
        }
        self.pool
            .reserve(self.next_id, &backup.hops, &primary_edges);
        self.primaries.insert(self.next_id, primary_edges);
        let conn = SharedConnection {
            id: self.next_id,
            primary,
            backup,
            shared_hops,
        };
        self.next_id += 1;
        Ok(conn)
    }

    /// Provisions a request sequence with speculative find-stage
    /// parallelism: each round snapshots the routing view once, runs the
    /// expensive find stage for a window of up to `window` pending requests
    /// on worker contexts, then commits results **in request order**.
    /// Because every successful commit changes both the routing view (the
    /// primary occupies channels) and the sharing pool (the backup
    /// reserves), a speculated result is serial-exact only while no commit
    /// has happened since its snapshot (rule 1 of
    /// [`crate::speculative`]'s protocol; degenerate requests commit
    /// unconditionally). Later window members abort and re-speculate next
    /// round, so the returned connections, pool and working state are
    /// identical to calling [`SharedProvisioner::provision`] sequentially.
    ///
    /// The speculated find calls are unrecorded (matching the batch
    /// engine's contract); `self.recorder` receives the commit-stage
    /// sharing counters plus the speculation counters and the
    /// per-round [`Hist::WindowOccupancy`] histogram.
    pub fn provision_batch_speculative(
        &mut self,
        reqs: &[(NodeId, NodeId)],
        window: usize,
    ) -> Vec<Result<SharedConnection, RoutingError>>
    where
        R: Sync,
        J: Sync,
    {
        let window = window.max(1);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let base: RouterCtx = RouterCtx::with_recorder(NoopRecorder);
        let mut ctxs: Vec<RouterCtx> = (0..cores.min(window)).map(|_| base.fork()).collect();

        let mut out: Vec<Option<Result<SharedConnection, RoutingError>>> =
            (0..reqs.len()).map(|_| None).collect();
        let mut pos = 0;
        while pos < reqs.len() {
            let chunk = &reqs[pos..(pos + window).min(reqs.len())];
            if self.recorder.enabled() {
                self.recorder
                    .observe(Hist::WindowOccupancy, chunk.len() as u64);
            }
            // Each round's view is an independent clone (working + pool
            // overlay), so the workers' change-clock caches must not trust
            // the previous round's clocks.
            for ctx in &mut ctxs {
                ctx.invalidate();
            }
            let view = self.routing_state();
            let this = &*self;
            let results = crate::speculative::fan_out(&mut ctxs, chunk, |ctx, &(s, t)| {
                this.find_on(&view, ctx, s, t)
            });

            let mut committed_any = false;
            let mut advanced = 0;
            for (k, res) in results.into_iter().enumerate() {
                let commit = !committed_any || matches!(res, Err(RoutingError::DegenerateRequest));
                if !commit {
                    break;
                }
                out[pos + k] = Some(match res {
                    Ok(found) => {
                        committed_any = true;
                        self.commit_found(found)
                    }
                    Err(e) => Err(e),
                });
                advanced += 1;
            }
            let aborted = (chunk.len() - advanced) as u64;
            if self.recorder.enabled() {
                self.recorder
                    .add(Counter::SpeculativeCommits, advanced as u64);
                if aborted > 0 {
                    self.recorder.add(Counter::SpeculativeAborts, aborted);
                    self.recorder.add(Counter::SpeculativeRetries, aborted);
                }
            }
            pos += advanced;
        }
        out.into_iter()
            .map(|o| o.expect("every request resolves"))
            .collect()
    }

    /// Sharing-aware wavelength DP along the backup's edges: minimise
    /// (fresh channels used, then conversion-feasible Eq. 1 cost is
    /// delegated to hop order). Returns `None` if some hop has no usable
    /// channel.
    #[allow(clippy::needless_range_loop)] // dp indexed by wavelength
    fn assign_backup(
        &self,
        edges: &[EdgeId],
        src: NodeId,
        primary_edges: &[EdgeId],
    ) -> Option<Semilightpath> {
        if edges.is_empty() {
            return None;
        }
        let w = self.net.num_wavelengths();
        let usable = |e: EdgeId| -> WavelengthSet {
            let mut set = WavelengthSet::empty();
            for l in self.net.lambda(e).iter() {
                // Free of working traffic...
                if !self.working.avail(self.net, e).contains(l) {
                    continue;
                }
                // ...and unreserved or joinable.
                if self.pool.can_use(e, l, primary_edges) {
                    set.insert(l);
                }
            }
            set
        };
        let hop_capacity_cost = |e: EdgeId, l: Wavelength| -> f64 {
            if self.pool.is_shareable(e, l, primary_edges) {
                0.0
            } else {
                1.0
            }
        };

        // DP over (hop, wavelength) minimising fresh-channel count, with
        // conversion feasibility from the node tables.
        let mut dp = vec![f64::INFINITY; w];
        let mut choice: Vec<Vec<u8>> = Vec::with_capacity(edges.len());
        for l in usable(edges[0]).iter() {
            dp[l.index()] = hop_capacity_cost(edges[0], l);
        }
        choice.push(vec![u8::MAX; w]);
        let mut at = self.net.endpoints(edges[0]).1;
        for &e in edges.iter().skip(1) {
            let (u, v) = self.net.endpoints(e);
            debug_assert_eq!(u, at);
            let conv = self.net.conversion(u);
            let mut next = vec![f64::INFINITY; w];
            let mut ch = vec![u8::MAX; w];
            for l2 in usable(e).iter() {
                let step = hop_capacity_cost(e, l2);
                for l1 in 0..w {
                    if dp[l1].is_finite() && conv.allows(Wavelength(l1 as u8), l2) {
                        let cand = dp[l1] + step;
                        if cand < next[l2.index()] {
                            next[l2.index()] = cand;
                            ch[l2.index()] = l1 as u8;
                        }
                    }
                }
            }
            dp = next;
            choice.push(ch);
            at = v;
        }
        let best = dp
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_finite())
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(l, _)| l)?;
        let mut lambdas = vec![0u8; edges.len()];
        let mut l = best as u8;
        for i in (0..edges.len()).rev() {
            lambdas[i] = l;
            if i > 0 {
                l = choice[i][l as usize];
            }
        }
        let hops: Vec<Hop> = edges
            .iter()
            .zip(&lambdas)
            .map(|(&e, &l)| Hop {
                edge: e,
                wavelength: Wavelength(l),
            })
            .collect();
        Semilightpath::new(self.net, src, hops).ok()
    }

    /// Tears down a connection, freeing its working channels and backup
    /// reservations.
    pub fn release(&mut self, conn: &SharedConnection) {
        conn.primary.release(&mut self.working);
        if self.journal.enabled() {
            self.journal_seq += 1;
            self.journal.record(NetEvent::Teardown {
                id: conn.id,
                channels: conn.primary.hops.clone(),
            });
        }
        self.primaries.remove(&conn.id);
        if self.recorder.enabled() {
            self.recorder.add(Counter::PoolRelease, 1);
        }
        if let Some(fr) = self.flight {
            fr.annotate(
                self.journal_seq,
                format!(
                    "pool release conn={} hops={}",
                    conn.id,
                    conn.backup.hops.len()
                ),
            );
        }
        let _ = self.pool.release(conn.id, &self.primaries);
    }

    /// Total channels consumed right now: working + distinct backup
    /// reservations. The comparable dedicated-protection figure is
    /// working + total backup hops.
    pub fn channels_in_use(&self) -> usize {
        let working: usize = (0..self.net.link_count())
            .map(|i| self.working.used_count(EdgeId::from(i)))
            .sum();
        working + self.pool.reserved_channels()
    }

    /// Channels dedicated protection would have consumed for the same
    /// connection set.
    pub fn dedicated_equivalent(&self) -> usize {
        let working: usize = (0..self.net.link_count())
            .map(|i| self.working.used_count(EdgeId::from(i)))
            .sum();
        working + self.pool.total_backup_hops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::conversion::ConversionTable;
    use wdm_core::network::NetworkBuilder;

    /// Two parallel corridors between a shared pair of hubs, plus separate
    /// sources whose primaries are edge-disjoint.
    fn net() -> WdmNetwork {
        NetworkBuilder::nsfnet(8).build()
    }

    #[test]
    fn disjoint_primaries_share_backup_channels() {
        let net = net();
        let mut p = SharedProvisioner::new(&net);
        // Two connections with the same endpoints: their §3.3 primaries and
        // backups use the same physical routes; primaries occupy different
        // wavelengths on the same links (NOT edge-disjoint) → cannot share.
        let a = p.provision(NodeId(0), NodeId(13)).unwrap();
        let b = p.provision(NodeId(0), NodeId(13)).unwrap();
        assert_eq!(a.shared_hops, 0);
        assert_eq!(
            b.shared_hops, 0,
            "same-route primaries must not share backups"
        );

        // A third connection whose primary is far away CAN share whatever
        // backup channels coincide.
        let c = p.provision(NodeId(4), NodeId(5)).unwrap();
        // Not guaranteed to overlap, but the accounting must be consistent:
        assert!(p.channels_in_use() <= p.dedicated_equivalent());
        let _ = c;
    }

    #[test]
    fn sharing_saves_capacity_on_many_disjoint_pairs() {
        let net = net();
        let mut p = SharedProvisioner::new(&net);
        // Provision many connections across scattered pairs; with sharing
        // the backup bill must come in under the dedicated equivalent.
        let pairs = [
            (0u32, 13u32),
            (1, 12),
            (2, 11),
            (3, 9),
            (5, 10),
            (6, 8),
            (7, 0),
            (13, 1),
        ];
        let mut ok = 0;
        for &(s, t) in &pairs {
            if p.provision(NodeId(s), NodeId(t)).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 6, "most pairs should fit ({ok})");
        assert!(
            p.channels_in_use() < p.dedicated_equivalent(),
            "sharing must save something: {} vs {}",
            p.channels_in_use(),
            p.dedicated_equivalent()
        );
    }

    #[test]
    fn pool_mutations_are_counted_and_annotated() {
        use wdm_core::journal::StateJournal;
        use wdm_telemetry::{SpanBuffer, TelemetrySink};

        let net = net();
        let sink = TelemetrySink::new();
        let journal = StateJournal::new(ResidualState::fresh(&net));
        let flight = FlightRecorder::new();
        let tracer = SpanBuffer::new();
        let mut p = SharedProvisioner::with_recorder_and_journal(&net, &sink, journal);
        p.attach_flight_recorder(&flight);

        let a = p.provision_traced(NodeId(0), NodeId(13), &tracer).unwrap();
        let b = p.provision_traced(NodeId(2), NodeId(11), &tracer).unwrap();
        p.release(&a);

        let snap = sink.snapshot();
        assert_eq!(snap.counters["pool_reserve"], 2);
        assert_eq!(snap.counters["pool_release"], 1);

        // Annotations carry the journal sequence the pool mutation rode
        // with: reserve n happens with n provisions journaled, the release
        // after the third event (2 provisions + 1 teardown).
        let dump = flight.dump();
        assert_eq!(dump.annotations.len(), 3);
        assert!(dump.annotations[0].note.starts_with("pool reserve conn=0"));
        assert_eq!(dump.annotations[0].journal_seq, 1);
        assert!(dump.annotations[1].note.starts_with("pool reserve conn=1"));
        assert_eq!(dump.annotations[1].journal_seq, 2);
        assert!(dump.annotations[2].note.starts_with("pool release conn=0"));
        assert_eq!(dump.annotations[2].journal_seq, 3);

        // Spans: one root per provision, each with a commit underneath and
        // sub-phases that fit inside the root.
        assert_eq!(tracer.requests_begun(), 2);
        let recs = tracer.records();
        assert_eq!(recs.iter().filter(|r| r.phase == Phase::Request).count(), 2);
        assert_eq!(recs.iter().filter(|r| r.phase == Phase::Commit).count(), 2);
        for req in 0..2u64 {
            let root = recs
                .iter()
                .find(|r| r.request == req && r.phase == Phase::Request)
                .unwrap();
            let sub: u64 = recs
                .iter()
                .filter(|r| r.request == req && r.phase != Phase::Request)
                .map(|r| r.duration_ns())
                .sum();
            assert!(sub <= root.duration_ns());
        }
        let _ = b;
    }

    #[test]
    fn release_returns_channels_and_rebuilds_unions() {
        let net = net();
        let mut p = SharedProvisioner::new(&net);
        let a = p.provision(NodeId(0), NodeId(13)).unwrap();
        let b = p.provision(NodeId(2), NodeId(11)).unwrap();
        let before = p.channels_in_use();
        p.release(&a);
        assert!(p.channels_in_use() < before);
        p.release(&b);
        assert_eq!(p.channels_in_use(), 0);
        assert_eq!(p.pool.reserved_channels(), 0);
    }

    #[test]
    fn primary_never_lands_on_reserved_backup_channel() {
        let net = net();
        let mut p = SharedProvisioner::new(&net);
        let mut conns = Vec::new();
        for i in 0..10 {
            if let Ok(c) = p.provision(NodeId(i % 14), NodeId((i * 5 + 7) % 14)) {
                conns.push(c);
            }
        }
        // Invariant: no primary hop coincides with a reserved backup channel
        // of a *different* connection, and no two primaries share a channel.
        let mut seen: std::collections::HashSet<(EdgeId, u8)> = Default::default();
        for c in &conns {
            for h in &c.primary.hops {
                assert!(
                    seen.insert((h.edge, h.wavelength.0)),
                    "primary channel collision"
                );
            }
        }
        for c in &conns {
            for h in &c.primary.hops {
                // A channel can appear in the pool only for this conn's own
                // backup (impossible: backup is edge-disjoint from primary).
                assert!(
                    !p.pool.is_reserved(h.edge, h.wavelength),
                    "primary sits on a backup reservation"
                );
            }
        }
    }

    #[test]
    fn stress_many_connections_keep_sharing_invariant() {
        use rand::{Rng, SeedableRng};
        let net = net();
        let mut p = SharedProvisioner::new(&net);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let mut live: Vec<SharedConnection> = Vec::new();
        for step in 0..120 {
            if !live.is_empty() && rng.gen_bool(0.35) {
                let i = rng.gen_range(0..live.len());
                let c = live.swap_remove(i);
                p.release(&c);
            } else {
                let s = rng.gen_range(0..14u32);
                let mut t = rng.gen_range(0..14u32);
                if s == t {
                    t = (t + 1) % 14;
                }
                if let Ok(c) = p.provision(NodeId(s), NodeId(t)) {
                    live.push(c);
                }
            }
            p.validate().unwrap_or_else(|e| panic!("step {step}: {e}"));
            assert!(p.channels_in_use() <= p.dedicated_equivalent());
        }
        for c in &live {
            p.release(c);
        }
        assert_eq!(p.channels_in_use(), 0);
    }

    #[test]
    fn provisioner_records_shared_vs_fresh_channels() {
        use wdm_telemetry::TelemetrySink;
        let net = net();
        let sink = TelemetrySink::new();
        let mut p = SharedProvisioner::with_recorder(&net, &sink);
        let pairs = [(0u32, 13u32), (1, 12), (2, 11), (3, 9), (5, 10), (6, 8)];
        for &(s, t) in &pairs {
            let _ = p.provision(NodeId(s), NodeId(t));
        }
        let snap = sink.snapshot();
        let shared = snap.counters["shared_backup_channels_shared"];
        let fresh = snap.counters["shared_backup_channels_fresh"];
        // Without releases, every fresh hop opened a distinct channel and
        // every hop (shared or fresh) is registered in the pool.
        assert_eq!(fresh as usize, p.pool.reserved_channels());
        assert_eq!((shared + fresh) as usize, p.pool.total_backup_hops());
        // The underlying §3.3 searches flowed through the same recorder.
        assert!(snap.counters["suurballe_searches"] > 0);
    }

    #[test]
    fn validate_first_error_is_deterministic() {
        // Two channels whose sharers' primaries overlap (per the map given
        // to validate); whatever the HashMap's internal order, the sorted
        // scan must report the lower-indexed channel first.
        let hop = |e: u32, l: u8| Hop {
            edge: EdgeId(e),
            wavelength: Wavelength(l),
        };
        let build = |reversed: bool| {
            let mut pool = SharedBackupPool::new();
            // Two channel groups, inserted in either order (the order of
            // sharers *within* a channel is part of its history and kept).
            let mut groups: Vec<[(u64, Hop, EdgeId); 2]> = vec![
                [(1, hop(2, 0), EdgeId(20)), (2, hop(2, 0), EdgeId(21))],
                [(3, hop(9, 1), EdgeId(22)), (4, hop(9, 1), EdgeId(23))],
            ];
            if reversed {
                groups.reverse();
            }
            for group in groups {
                for (conn, h, p) in group {
                    pool.reserve(conn, &[h], &[p]);
                }
            }
            pool
        };
        // At validate time, both sharer pairs claim a common primary link.
        let mut primaries = HashMap::new();
        primaries.insert(1u64, vec![EdgeId(7)]);
        primaries.insert(2u64, vec![EdgeId(7)]);
        primaries.insert(3u64, vec![EdgeId(8)]);
        primaries.insert(4u64, vec![EdgeId(8)]);
        let a = build(false).validate(&primaries).unwrap_err();
        let b = build(true).validate(&primaries).unwrap_err();
        assert_eq!(a, b);
        assert!(a.contains("λ0"), "lowest channel first: {a}");
    }

    #[test]
    fn routing_state_clock_stamping_is_deterministic() {
        let net = net();
        let mk = || {
            let mut p = SharedProvisioner::new(&net);
            for &(s, t) in &[(0u32, 13u32), (2, 11), (5, 10)] {
                p.provision(NodeId(s), NodeId(t)).unwrap();
            }
            p.routing_state()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a, b);
        // The pool-overlay occupies are applied in sorted channel order, so
        // even the per-link change clocks agree across instances.
        for ei in 0..net.link_count() {
            let e = EdgeId::from(ei);
            assert_eq!(a.link_change_clock(e), b.link_change_clock(e), "{e:?}");
        }
    }

    #[test]
    fn speculative_batch_matches_sequential_provision() {
        let net = net();
        let mut reqs: Vec<(NodeId, NodeId)> = [
            (0u32, 13u32),
            (1, 12),
            (2, 11),
            (3, 3), // degenerate: commits under any rule
            (3, 9),
            (5, 10),
            (6, 8),
            (7, 0),
            (13, 1),
            (0, 13),
            (12, 2),
        ]
        .iter()
        .map(|&(s, t)| (NodeId(s), NodeId(t)))
        .collect();
        reqs.extend(reqs.clone()); // repeat: later requests meet a loaded pool

        let mut serial = SharedProvisioner::new(&net);
        let expected: Vec<Result<SharedConnection, RoutingError>> =
            reqs.iter().map(|&(s, t)| serial.provision(s, t)).collect();

        for window in [1, 4, 64] {
            let mut spec = SharedProvisioner::new(&net);
            let got = spec.provision_batch_speculative(&reqs, window);
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                match (g, e) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.id, b.id);
                        assert_eq!(a.primary, b.primary);
                        assert_eq!(a.backup, b.backup);
                        assert_eq!(a.shared_hops, b.shared_hops);
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    _ => panic!("outcome mismatch (window {window}): {g:?} vs {e:?}"),
                }
            }
            assert_eq!(spec.working, serial.working);
            assert_eq!(
                spec.pool.reserved_channels(),
                serial.pool.reserved_channels()
            );
            assert_eq!(
                spec.pool.total_backup_hops(),
                serial.pool.total_backup_hops()
            );
            spec.validate().unwrap();
        }
        serial.validate().unwrap();
    }

    #[test]
    fn journal_replays_working_state_lineage() {
        use wdm_core::journal::StateJournal;
        let net = net();
        let journal = StateJournal::new(ResidualState::fresh(&net));
        let mut p = SharedProvisioner::with_recorder_and_journal(&net, NoopRecorder, journal);
        let mut conns = Vec::new();
        for &(s, t) in &[(0u32, 13u32), (1, 12), (2, 11), (5, 10), (6, 8)] {
            if let Ok(c) = p.provision(NodeId(s), NodeId(t)) {
                conns.push(c);
            }
        }
        assert!(conns.len() >= 4, "most pairs should fit");
        p.release(&conns.swap_remove(1));
        let _ = p.provision(NodeId(7), NodeId(0));

        // Replaying the journaled lineage over the fresh checkpoint must
        // reconstruct `working` bit-identically, clocks included (pool
        // reservations are deliberately outside the journal's contract).
        let replayed = p.journal.replay(&net).expect("journal replays cleanly");
        assert_eq!(replayed, p.working);
        assert_eq!(replayed.change_clock(), p.working.change_clock());
        for ei in 0..net.link_count() {
            let e = EdgeId::from(ei);
            assert_eq!(
                replayed.link_change_clock(e),
                p.working.link_change_clock(e),
                "{e:?}"
            );
        }
        assert_eq!(replayed.semantic_hash(), p.working.semantic_hash());
    }

    #[test]
    fn pool_can_use_logic() {
        let mut pool = SharedBackupPool::new();
        let e = EdgeId(3);
        let l = Wavelength(1);
        assert!(pool.can_use(e, l, &[EdgeId(0)]));
        assert!(!pool.is_shareable(e, l, &[EdgeId(0)]));
        pool.reserve(
            7,
            &[Hop {
                edge: e,
                wavelength: l,
            }],
            &[EdgeId(0), EdgeId(1)],
        );
        // Disjoint primary may join; overlapping primary may not.
        assert!(pool.can_use(e, l, &[EdgeId(2)]));
        assert!(pool.is_shareable(e, l, &[EdgeId(2)]));
        assert!(!pool.can_use(e, l, &[EdgeId(1)]));
        // Release restores.
        let mut primaries = HashMap::new();
        primaries.insert(7u64, vec![EdgeId(0), EdgeId(1)]);
        let hops = pool.release(7, &HashMap::new());
        assert_eq!(hops.len(), 1);
        assert!(!pool.is_reserved(e, l));
        let _ = primaries;
        let _ = ConversionTable::None;
    }
}
