//! Static (batch) provisioning: route a whole demand set at once.
//!
//! The paper's §1 contrasts its dynamic setting with the *static* design
//! problem its citations \[17, 3\] solve offline. This module provides that
//! substrate: given a list of demands, provision them sequentially under a
//! routing policy, with a choice of processing order — the classic knob in
//! static RWA, since early routes constrain later ones. The
//! `exp_static_batch` binary measures how much the order and the policy
//! matter.

use crate::policy::{Policy, ProvisionedRoute};
use wdm_core::journal::{EventSink, NetEvent, NoopSink};
use wdm_core::load::{load_snapshot, LoadSnapshot};
use wdm_core::network::{ResidualState, WdmNetwork};
use wdm_core::optimal_slp::optimal_semilightpath;
use wdm_graph::NodeId;

/// One demand of a static traffic matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Demand {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

impl Demand {
    /// Convenience constructor.
    pub fn new(src: u32, dst: u32) -> Self {
        Self {
            src: NodeId(src),
            dst: NodeId(dst),
        }
    }
}

/// Processing order for the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BatchOrder {
    /// As given in the input.
    AsGiven,
    /// Shortest unprotected route first (cheap demands lock in early).
    ShortestFirst,
    /// Longest unprotected route first (the classic static-RWA heuristic:
    /// route the hard, resource-hungry demands while the network is empty).
    LongestFirst,
}

/// Result of provisioning one batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Indices into the input demands that were provisioned, with their
    /// routes, in processing order.
    pub provisioned: Vec<(usize, ProvisionedRoute)>,
    /// Indices of demands that could not be provisioned.
    pub rejected: Vec<usize>,
    /// Total Eq. 1 cost over all provisioned routes.
    pub total_cost: f64,
    /// Load distribution after the whole batch.
    pub final_load: LoadSnapshot,
    /// The residual state after provisioning (for incremental follow-ups).
    pub state: ResidualState,
}

impl BatchOutcome {
    /// Fraction of demands provisioned.
    pub fn acceptance_ratio(&self, total: usize) -> f64 {
        if total == 0 {
            1.0
        } else {
            self.provisioned.len() as f64 / total as f64
        }
    }
}

/// Provisions `demands` on a fresh copy of `state` under `policy`,
/// processing them in `order`. Routes are reserved as they are found, so
/// later demands see earlier reservations (sequential heuristic — the
/// standard approach; the global ILP over all demands at once is
/// exponential and out of scope even for the paper).
pub fn provision_batch(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
) -> BatchOutcome {
    provision_batch_journaled(net, state, demands, policy, order, NoopSink)
}

/// As [`provision_batch`], additionally appending one
/// [`NetEvent::Provision`] per provisioned route to `journal` (`id` = the
/// demand's index in `demands`), in processing order — replaying them over
/// `state` reproduces the outcome's final state.
pub fn provision_batch_journaled<J: EventSink>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    mut journal: J,
) -> BatchOutcome {
    let mut st = state.clone();
    let idx = processing_order(net, &st, demands, order);

    let mut provisioned = Vec::new();
    let mut rejected = Vec::new();
    let mut total_cost = 0.0;
    for i in idx {
        let d = demands[i];
        match policy.route(net, &st, d.src, d.dst) {
            Ok(route) => {
                route
                    .occupy(net, &mut st)
                    .expect("route computed against current state");
                if journal.enabled() {
                    journal.record(NetEvent::Provision {
                        id: i as u64,
                        channels: route.channels(),
                    });
                }
                total_cost += route.total_cost();
                provisioned.push((i, route));
            }
            Err(_) => rejected.push(i),
        }
    }
    let final_load = load_snapshot(net, &st);
    BatchOutcome {
        provisioned,
        rejected,
        total_cost,
        final_load,
        state: st,
    }
}

/// The demand indices in batch-processing order. Sort keys use the
/// unprotected optimal route cost on the *initial* state (a static
/// estimate). Shared with the speculative engine so both process the exact
/// same sequence.
pub(crate) fn processing_order(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    order: BatchOrder,
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..demands.len()).collect();
    match order {
        BatchOrder::AsGiven => {}
        BatchOrder::ShortestFirst | BatchOrder::LongestFirst => {
            let keys: Vec<f64> = demands
                .iter()
                .map(|d| {
                    optimal_semilightpath(net, state, d.src, d.dst)
                        .map_or(f64::INFINITY, |p| p.cost)
                })
                .collect();
            idx.sort_by(|&a, &b| {
                keys[a]
                    .partial_cmp(&keys[b])
                    .expect("route costs are not NaN")
            });
            if order == BatchOrder::LongestFirst {
                idx.reverse();
            }
        }
    }
    idx
}

/// A full-mesh demand set (`k` demands per ordered node pair) — the
/// standard static-design benchmark matrix.
pub fn full_mesh_demands(n: usize, k: usize) -> Vec<Demand> {
    let mut out = Vec::with_capacity(n * (n - 1) * k);
    for s in 0..n as u32 {
        for t in 0..n as u32 {
            if s != t {
                for _ in 0..k {
                    out.push(Demand::new(s, t));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::network::NetworkBuilder;

    fn nsfnet(w: usize) -> WdmNetwork {
        NetworkBuilder::nsfnet(w).build()
    }

    #[test]
    fn full_mesh_acceptance_grows_with_capacity() {
        // A protected full mesh on 14-node NSFNET needs ~6 channels per
        // demand over 42x W channel capacity, so W = 16 saturates while
        // W = 64 fits nearly everything.
        let st16 = {
            let net = nsfnet(16);
            let st = ResidualState::fresh(&net);
            provision_batch(
                &net,
                &st,
                &full_mesh_demands(14, 1),
                Policy::CostOnly,
                BatchOrder::AsGiven,
            )
        };
        let st64 = {
            let net = nsfnet(64);
            let st = ResidualState::fresh(&net);
            provision_batch(
                &net,
                &st,
                &full_mesh_demands(14, 1),
                Policy::CostOnly,
                BatchOrder::AsGiven,
            )
        };
        let total = 14 * 13;
        let a16 = st16.acceptance_ratio(total);
        let a64 = st64.acceptance_ratio(total);
        assert!(a16 > 0.3, "W=16 acceptance {a16}");
        assert!(a64 > 0.95, "W=64 acceptance {a64}");
        assert!(a64 > a16, "capacity must help: {a16} vs {a64}");
        assert_eq!(st16.provisioned.len() + st16.rejected.len(), total);
        assert!(st16.total_cost > 0.0);
    }

    #[test]
    fn capacity_pressure_causes_rejections() {
        let net = nsfnet(2); // tiny capacity
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(14, 2);
        let out = provision_batch(&net, &st, &demands, Policy::CostOnly, BatchOrder::AsGiven);
        assert!(!out.rejected.is_empty(), "W=2 cannot host a double mesh");
        // Everything that was accepted is a valid reservation: releasing
        // them all restores the initial state.
        let mut st2 = out.state.clone();
        for (_, r) in &out.provisioned {
            r.release(&mut st2);
        }
        assert_eq!(st2, st);
    }

    #[test]
    fn ordering_changes_outcomes_deterministically() {
        let net = nsfnet(4);
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(14, 1);
        let a = provision_batch(
            &net,
            &st,
            &demands,
            Policy::CostOnly,
            BatchOrder::LongestFirst,
        );
        let b = provision_batch(
            &net,
            &st,
            &demands,
            Policy::CostOnly,
            BatchOrder::LongestFirst,
        );
        assert_eq!(a.provisioned.len(), b.provisioned.len());
        assert_eq!(a.total_cost, b.total_cost);
        // Orders actually differ in processing sequence.
        let c = provision_batch(
            &net,
            &st,
            &demands,
            Policy::CostOnly,
            BatchOrder::ShortestFirst,
        );
        let first_long = a.provisioned.first().map(|(i, _)| *i);
        let first_short = c.provisioned.first().map(|(i, _)| *i);
        assert_ne!(first_long, first_short);
    }

    #[test]
    fn empty_batch_is_trivially_complete() {
        let net = nsfnet(4);
        let st = ResidualState::fresh(&net);
        let out = provision_batch(&net, &st, &[], Policy::CostOnly, BatchOrder::AsGiven);
        assert!(out.provisioned.is_empty() && out.rejected.is_empty());
        assert_eq!(out.acceptance_ratio(0), 1.0);
        assert_eq!(out.final_load.max, 0.0);
    }

    #[test]
    fn batch_respects_preexisting_occupancy() {
        let net = nsfnet(4);
        let mut st = ResidualState::fresh(&net);
        // Pre-occupy one full corridor.
        use wdm_core::wavelength::Wavelength;
        for l in 0..4 {
            st.occupy(&net, wdm_graph::EdgeId(0), Wavelength(l))
                .unwrap();
        }
        let demands = vec![Demand::new(0, 1); 3];
        let out = provision_batch(&net, &st, &demands, Policy::CostOnly, BatchOrder::AsGiven);
        // Routes must avoid the saturated link entirely.
        for (_, r) in &out.provisioned {
            if let ProvisionedRoute::Protected(route) = r {
                assert!(route
                    .primary
                    .edges()
                    .chain(route.backup.edges())
                    .all(|e| e != wdm_graph::EdgeId(0)));
            }
        }
    }
}
