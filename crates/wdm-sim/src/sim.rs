//! The discrete-event simulator: dynamic requests, provisioning, link
//! failures with active/passive recovery, and threshold-triggered network
//! reconfiguration.

use crate::batch::{provision_batch_journaled, BatchOrder, BatchOutcome, Demand};
use crate::events::{Event, EventQueue};
use crate::metrics::Metrics;
use crate::policy::{Policy, ProvisionedRoute};
use crate::provisioner::{NetProvisioner, Provisioner};
use crate::schedule::ScheduleMode;
use crate::speculative::{provision_batch_speculative_scheduled, SpeculationStats};
use crate::traffic::{sample_exp, TrafficModel};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wdm_core::aux_engine::RouterCtx;
use wdm_core::journal::{EventSink, NetEvent, NoopSink, Txn};
use wdm_core::load::load_snapshot;
use wdm_core::network::{ResidualState, StateError, WdmNetwork};
use wdm_core::optimal_slp::optimal_semilightpath_filtered;
use wdm_core::semilightpath::{Hop, RobustRoute, Semilightpath};
use wdm_graph::EdgeId;
use wdm_telemetry::{
    FlightRecord, FlightRecorder, NoopRecorder, NoopTracer, Phase, Recorder, Tracer,
};

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimConfig {
    /// Provisioning policy.
    pub policy: Policy,
    /// Arrival/holding process.
    pub traffic: TrafficModel,
    /// Simulated time horizon.
    pub duration: f64,
    /// Global link-failure rate (Poisson; 0 disables failures).
    pub failure_rate: f64,
    /// Mean link repair time (exponential).
    pub mean_repair: f64,
    /// Trigger a reconfiguration when the sampled network load reaches this
    /// value (`None` disables reconfiguration).
    pub reconfig_threshold: Option<f64>,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Service-interruption time of an *active* protection switchover
    /// (optical protection switching is ~tens of milliseconds; default
    /// 0.001 time units).
    pub switchover_time: f64,
    /// Per-hop signalling/setup time charged when a route must be
    /// (re-)established at failure time — the passive approach's
    /// "time-consuming connection re-establishment process" (§1);
    /// default 0.05 time units per hop.
    pub setup_time_per_hop: f64,
}

impl SimConfig {
    /// A reasonable default: cost-only policy, 10 Erlang, no failures.
    pub fn default_with(policy: Policy, seed: u64) -> Self {
        Self {
            policy,
            traffic: TrafficModel::new(1.0, 10.0),
            duration: 1000.0,
            failure_rate: 0.0,
            mean_repair: 10.0,
            reconfig_threshold: None,
            seed,
            switchover_time: 0.001,
            setup_time_per_hop: 0.05,
        }
    }
}

impl SimConfig {
    /// Number of hops across a provisioned route (for setup-time charges).
    fn route_hops(route: &ProvisionedRoute) -> usize {
        match route {
            ProvisionedRoute::Protected(r) => r.primary.len() + r.backup.len(),
            ProvisionedRoute::Unprotected(p) => p.len(),
        }
    }
}

/// The simulator. Owns the mutable residual state (through its
/// [`NetProvisioner`]); borrows the immutable network (many simulators can
/// share one network across threads).
///
/// Generic over the telemetry [`Recorder`]: the default [`NoopRecorder`]
/// compiles all instrumentation away; [`Simulator::with_recorder`] threads a
/// live recorder (e.g. `&TelemetrySink`) through every routing call.
///
/// Also generic over the lifecycle [`EventSink`]: with the default
/// [`NoopSink`] no events (or their channel-list payloads) are ever built;
/// [`Simulator::with_recorder_and_journal`] records every state mutation —
/// provision, teardown, failure, repair, recovery and reconfiguration
/// moves — so the run can be replayed bit-identically from its journal.
///
/// And generic over the span [`Tracer`]: with the default [`NoopTracer`]
/// phase timing compiles away; [`Simulator::with_observability`] attaches a
/// live span buffer (per-request phase spans) and, optionally, a
/// [`FlightRecorder`] whose per-request records carry the journal sequence
/// number current when each request was decided — the correlation `wdm
/// replay` needs to reconstruct the exact state a pathological request saw.
pub struct Simulator<
    'a,
    R: Recorder = NoopRecorder,
    J: EventSink = NoopSink,
    T: Tracer = NoopTracer,
> {
    net: &'a WdmNetwork,
    cfg: SimConfig,
    /// The provisioning service: residual state, warm router contexts,
    /// journal and connection table — the single mutation lineage every
    /// event handler drives (the same service `wdm serve` runs live).
    prov: NetProvisioner<'a, R, J, T>,
    flight: Option<&'a FlightRecorder>,
    queue: EventQueue,
    rng: ChaCha8Rng,
    metrics: Metrics,
    now: f64,
    last_reconfig: f64,
    /// Time of the last load-integral update.
    last_integral_at: f64,
    /// External interrupt (e.g. a SIGINT handler): when set, the event loop
    /// stops cleanly at the next event boundary so journals stay replayable.
    stop: Option<Arc<AtomicBool>>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over a fresh residual state (no telemetry).
    pub fn new(net: &'a WdmNetwork, cfg: SimConfig) -> Self {
        Self::with_recorder(net, cfg, NoopRecorder)
    }
}

impl<'a, R: Recorder> Simulator<'a, R> {
    /// As [`Simulator::new`], recording telemetry through `recorder`.
    pub fn with_recorder(net: &'a WdmNetwork, cfg: SimConfig, recorder: R) -> Self {
        Self::with_recorder_and_journal(net, cfg, recorder, NoopSink)
    }
}

impl<'a, R: Recorder, J: EventSink> Simulator<'a, R, J> {
    /// As [`Simulator::with_recorder`], additionally appending every state
    /// mutation to `journal` (typically `&mut StateJournal`). Replaying the
    /// journal over the fresh initial state reconstructs the final state
    /// bit-identically, change clocks included.
    pub fn with_recorder_and_journal(
        net: &'a WdmNetwork,
        cfg: SimConfig,
        recorder: R,
        journal: J,
    ) -> Self {
        Self::with_observability(net, cfg, recorder, journal, NoopTracer, None)
    }
}

impl<'a, R: Recorder, J: EventSink, T: Tracer> Simulator<'a, R, J, T> {
    /// The fully instrumented constructor: telemetry `recorder`, lifecycle
    /// `journal`, span `tracer` (e.g. `&SpanBuffer`) and an optional flight
    /// recorder collecting one record per arrival.
    pub fn with_observability(
        net: &'a WdmNetwork,
        cfg: SimConfig,
        recorder: R,
        journal: J,
        tracer: T,
        flight: Option<&'a FlightRecorder>,
    ) -> Self {
        Self {
            net,
            cfg,
            prov: NetProvisioner::with_parts(
                net,
                cfg.policy,
                ResidualState::fresh(net),
                RouterCtx::with_recorder_and_tracer(recorder, tracer),
                journal,
            ),
            flight,
            queue: EventQueue::new(),
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            metrics: Metrics::default(),
            now: 0.0,
            last_reconfig: f64::NEG_INFINITY,
            last_integral_at: 0.0,
            stop: None,
        }
    }

    /// Installs an interrupt flag: when it turns true, [`Self::run_into`]
    /// stops at the next event boundary (never mid-mutation), closes the
    /// load integral at the interruption time, and returns normally — so a
    /// journal written up to that point still replays and verifies.
    pub fn set_stop_flag(&mut self, stop: Arc<AtomicBool>) {
        self.stop = Some(stop);
    }

    /// Accumulates the time-weighted network-load integral up to `self.now`
    /// (call *before* any state change at the current event).
    fn accrue_load_integral(&mut self) {
        let dt = self.now - self.last_integral_at;
        if dt > 0.0 {
            self.metrics.load_time_integral += dt * self.prov.state().network_load(self.net);
            self.last_integral_at = self.now;
        }
    }

    /// Runs to the configured horizon and returns the metrics.
    pub fn run(self) -> Metrics {
        self.run_into().0
    }

    /// As [`run`](Self::run), additionally returning the final residual
    /// state — the ground truth a journal replay (and its hash) is checked
    /// against.
    pub fn run_into(mut self) -> (Metrics, ResidualState) {
        let first = self.cfg.traffic.next_interarrival(&mut self.rng);
        self.queue.schedule(first, Event::Arrival);
        if self.cfg.failure_rate > 0.0 {
            let f = sample_exp(&mut self.rng, self.cfg.failure_rate);
            let link = self.pick_link();
            self.queue.schedule(f, Event::LinkFailure { link });
        }
        let mut interrupted = false;
        while let Some((time, event)) = self.queue.next() {
            if time > self.cfg.duration {
                break;
            }
            if self
                .stop
                .as_ref()
                .is_some_and(|s| s.load(Ordering::Relaxed))
            {
                interrupted = true;
                break;
            }
            self.now = time;
            self.accrue_load_integral();
            match event {
                Event::Arrival => self.on_arrival(),
                Event::Departure { conn } => self.on_departure(conn),
                Event::LinkFailure { link } => self.on_failure(link),
                Event::LinkRepair { link } => self.on_repair(link),
            }
        }
        // Close the load integral at the horizon — or, when interrupted, at
        // the last event actually processed, so the metrics stay internally
        // consistent with the shortened run.
        if !interrupted {
            self.now = self.cfg.duration;
        }
        self.accrue_load_integral();
        self.metrics.sim_time = self.now;
        self.metrics.final_snapshot = Some(load_snapshot(self.net, self.prov.state()));
        (self.metrics, self.prov.into_state())
    }

    fn pick_link(&mut self) -> EdgeId {
        EdgeId::from(self.rng.gen_range(0..self.net.link_count()))
    }

    fn on_arrival(&mut self) {
        // Schedule the next arrival first (keeps the process independent of
        // admission outcomes).
        let gap = self.cfg.traffic.next_interarrival(&mut self.rng);
        self.queue.schedule(self.now + gap, Event::Arrival);

        let (s, t) = self
            .cfg
            .traffic
            .draw_pair(self.net.node_count(), &mut self.rng);
        self.metrics.offered += 1;
        let tracing = self.prov.ctx().tracer().enabled();
        let req_t0 = self.prov.ctx().tracer().now_ns();
        let seq_before = self.prov.journal_seq();
        let mut footprint_links = 0u32;
        let routed = match self.prov.route(s, t) {
            Ok(route) => {
                let commit_t0 = self.prov.ctx().tracer().now_ns();
                self.metrics.admitted += 1;
                self.metrics.total_route_cost += route.total_cost();
                self.metrics.total_conversions += match &route {
                    ProvisionedRoute::Protected(r) => {
                        (r.primary.conversion_count() + r.backup.conversion_count()) as u64
                    }
                    ProvisionedRoute::Unprotected(p) => p.conversion_count() as u64,
                };
                if self.flight.is_some() {
                    footprint_links = route.footprint().links.len() as u32;
                }
                let id = self.prov.commit(s, t, route);
                let hold = self.cfg.traffic.holding(&mut self.rng);
                self.queue
                    .schedule(self.now + hold, Event::Departure { conn: id });
                if tracing {
                    self.prov.ctx().tracer().record(Phase::Commit, commit_t0);
                }
                true
            }
            Err(_) => {
                self.metrics.blocked += 1;
                false
            }
        };
        if tracing {
            self.prov.ctx().tracer().record(Phase::Request, req_t0);
        }
        if let Some(fr) = self.flight {
            let phase_ns = self.prov.ctx().tracer().last_request_phases();
            fr.push(FlightRecord {
                request: fr.total_requests(),
                src: s.0,
                dst: t.0,
                policy: self.cfg.policy.name().to_string(),
                outcome: if routed { "routed" } else { "blocked" }.to_string(),
                journal_seq: seq_before,
                footprint_links,
                phase_ns: phase_ns.to_vec(),
                total_ns: phase_ns[Phase::Request as usize],
                abort_cause: None,
            });
        }
        // Load sample + optional reconfiguration.
        let rho = self.prov.state().network_load(self.net);
        self.metrics.load_samples += 1;
        self.metrics.load_sum += rho;
        self.metrics.peak_network_load = self.metrics.peak_network_load.max(rho);
        if let Some(th) = self.cfg.reconfig_threshold {
            // Reconfiguration freezes the network (§1: it does not respond
            // to requests while re-routing), so operators rate-limit it; one
            // event per time unit is the floor here. This also keeps the
            // simulation cost bounded under saturation, where the threshold
            // would otherwise fire on every arrival.
            if rho >= th && self.now - self.last_reconfig >= 1.0 {
                self.last_reconfig = self.now;
                // An Err cut the sweep short with the in-flight move rolled
                // back atomically; the next threshold crossing retries.
                let _ = self.reconfigure();
            }
        }
    }

    fn on_departure(&mut self, conn: u64) {
        // The connection may already have been dropped by a failed recovery
        // (teardown of an unknown id is a no-op).
        self.prov.teardown(conn);
    }

    fn on_repair(&mut self, link: EdgeId) {
        self.prov.repair_link(link);
    }

    /// Finds a new backup leg edge-disjoint from `primary`.
    fn reprovision_backup(&mut self, primary: &Semilightpath) -> Option<Semilightpath> {
        let mut banned = vec![false; self.net.link_count()];
        for e in primary.edges() {
            banned[e.index()] = true;
        }
        let state = self.prov.state_mut();
        let slp = optimal_semilightpath_filtered(self.net, state, primary.src, primary.dst, |e| {
            !banned[e.index()]
        })?;
        slp.occupy(self.net, state).ok()?;
        Some(slp)
    }

    fn on_failure(&mut self, link: EdgeId) {
        // Schedule the next failure of the global process.
        let gap = sample_exp(&mut self.rng, self.cfg.failure_rate);
        let next_link = self.pick_link();
        self.queue
            .schedule(self.now + gap, Event::LinkFailure { link: next_link });

        if !self.prov.fail_link(link) {
            return; // already down
        }
        self.metrics.failures_injected += 1;
        self.queue.schedule(
            self.now + sample_exp(&mut self.rng, 1.0 / self.cfg.mean_repair),
            Event::LinkRepair { link },
        );

        let mut affected: Vec<u64> = self
            .prov
            .connections()
            .iter()
            .filter(|(_, c)| match &c.route {
                ProvisionedRoute::Protected(r) => {
                    r.primary.edges().any(|e| e == link) || r.backup.edges().any(|e| e == link)
                }
                ProvisionedRoute::Unprotected(p) => p.edges().any(|e| e == link),
            })
            .map(|(&id, _)| id)
            .collect();
        // HashMap iteration order is random per instance; recovery order
        // affects routing outcomes, so process connections oldest-first to
        // keep runs a pure function of the seed.
        affected.sort_unstable();

        for id in affected {
            let Some(c) = self.prov.connections().get(&id) else {
                continue;
            };
            match c.route.clone() {
                ProvisionedRoute::Protected(r) => {
                    let primary_hit = r.primary.edges().any(|e| e == link);
                    let backup_hit = r.backup.edges().any(|e| e == link);
                    match (primary_hit, backup_hit) {
                        (true, false) => {
                            // Active protection: instant switchover.
                            self.metrics.fast_switchovers += 1;
                            self.metrics.recovery_time_sum += self.cfg.switchover_time;
                            self.metrics.recovery_events += 1;
                            let released = if self.prov.journal_enabled() {
                                r.primary.hops.clone()
                            } else {
                                Vec::new()
                            };
                            r.primary.release(self.prov.state_mut());
                            let new_primary = r.backup;
                            let new_backup = self.reprovision_backup(&new_primary);
                            if new_backup.is_some() {
                                self.metrics.backups_reprovisioned += 1;
                            }
                            if self.prov.journal_enabled() {
                                self.prov.journal_event(NetEvent::Reconfigure {
                                    id,
                                    released,
                                    occupied: new_backup
                                        .as_ref()
                                        .map_or_else(Vec::new, |b| b.hops.clone()),
                                });
                            }
                            let conn = self.prov.connections_mut().get_mut(&id).expect("present");
                            conn.route = match new_backup {
                                Some(b) => ProvisionedRoute::Protected(RobustRoute {
                                    primary: new_primary,
                                    backup: b,
                                }),
                                None => ProvisionedRoute::Unprotected(new_primary),
                            };
                        }
                        (false, true) => {
                            // Backup lost; try to re-protect.
                            let released = if self.prov.journal_enabled() {
                                r.backup.hops.clone()
                            } else {
                                Vec::new()
                            };
                            r.backup.release(self.prov.state_mut());
                            let new_backup = self.reprovision_backup(&r.primary);
                            if new_backup.is_some() {
                                self.metrics.backups_reprovisioned += 1;
                            }
                            if self.prov.journal_enabled() {
                                self.prov.journal_event(NetEvent::Reconfigure {
                                    id,
                                    released,
                                    occupied: new_backup
                                        .as_ref()
                                        .map_or_else(Vec::new, |b| b.hops.clone()),
                                });
                            }
                            let conn = self.prov.connections_mut().get_mut(&id).expect("present");
                            conn.route = match new_backup {
                                Some(b) => ProvisionedRoute::Protected(RobustRoute {
                                    primary: r.primary,
                                    backup: b,
                                }),
                                None => ProvisionedRoute::Unprotected(r.primary),
                            };
                        }
                        (true, true) => self.passive_recover(id),
                        (false, false) => unreachable!("connection was in the affected set"),
                    }
                }
                ProvisionedRoute::Unprotected(_) => self.passive_recover(id),
            }
        }
    }

    /// Passive recovery: tear down and try to provision a fresh route now.
    fn passive_recover(&mut self, id: u64) {
        let c = self.prov.connections().get(&id).expect("present").clone();
        let released = if self.prov.journal_enabled() {
            c.route.channels()
        } else {
            Vec::new()
        };
        let policy = self.cfg.policy;
        let (ctx, state) = self.prov.ctx_and_state_mut();
        c.route.release(state);
        match policy.route_ctx(ctx, self.net, state, c.src, c.dst) {
            Ok(route) => {
                route
                    .occupy(self.net, state)
                    .expect("fresh route must occupy");
                if self.prov.journal_enabled() {
                    self.prov.journal_event(NetEvent::Reconfigure {
                        id,
                        released,
                        occupied: route.channels(),
                    });
                }
                self.metrics.passive_recoveries += 1;
                self.metrics.recovery_time_sum +=
                    self.cfg.setup_time_per_hop * SimConfig::route_hops(&route) as f64;
                self.metrics.recovery_events += 1;
                self.prov
                    .connections_mut()
                    .get_mut(&id)
                    .expect("present")
                    .route = route;
            }
            Err(_) => {
                if self.prov.journal_enabled() {
                    self.prov.journal_event(NetEvent::Reconfigure {
                        id,
                        released,
                        occupied: Vec::new(),
                    });
                }
                self.metrics.recovery_failures += 1;
                self.prov.connections_mut().remove(&id);
            }
        }
    }

    /// Threshold-triggered reconfiguration: move connections off the
    /// most-loaded link using the §4.2 joint algorithm until the hot link
    /// cools below the threshold (or no move helps).
    ///
    /// Each candidate move runs in a [`Txn`], so a rejected mutation rolls
    /// the probe back atomically; `Err` means the sweep was cut short with
    /// the state exactly as the last completed move left it.
    fn reconfigure(&mut self) -> Result<(), StateError> {
        let th = self.cfg.reconfig_threshold.expect("caller checked");
        let hot = (0..self.net.link_count())
            .map(EdgeId::from)
            .max_by(|&a, &b| {
                self.prov
                    .state()
                    .load(self.net, a)
                    .partial_cmp(&self.prov.state().load(self.net, b))
                    .expect("loads are finite")
            });
        let Some(hot) = hot else { return Ok(()) };

        let mut users: Vec<u64> = self
            .prov
            .connections()
            .iter()
            .filter(|(_, c)| match &c.route {
                ProvisionedRoute::Protected(r) => {
                    r.primary.edges().any(|e| e == hot) || r.backup.edges().any(|e| e == hot)
                }
                ProvisionedRoute::Unprotected(p) => p.edges().any(|e| e == hot),
            })
            .map(|(&id, _)| id)
            .collect();
        // Sorted for determinism (see on_failure) — move oldest connections
        // first.
        users.sort_unstable();
        if users.is_empty() {
            // Nothing to move: the hot link's load is all transit-free
            // reservation churn; not a reconfiguration.
            return Ok(());
        }
        self.metrics.reconfig_events += 1;

        for id in users {
            if self.prov.state().load(self.net, hot) < th {
                break;
            }
            let c = self.prov.connections().get(&id).expect("present").clone();
            let released = c.route.channels();
            // The probe runs inside a transaction: release the current
            // reservation, route on the transactional state, and either
            // commit the move or roll back to the exact pre-probe state
            // (clocks included) in O(channels touched). Restore-after-
            // release is therefore atomic — no re-occupy that could
            // half-fail and strand channels.
            let (ctx, state) = self.prov.ctx_and_state_mut();
            let mut txn = Txn::begin(state);
            txn.release_hops(&released);
            // Joint policy with the hot link's channels avoided implicitly by
            // its congestion weight (and the threshold filter).
            let moved = wdm_core::joint::find_two_paths_joint_ctx(
                ctx,
                self.net,
                txn.state(),
                c.src,
                c.dst,
                wdm_core::mincog::DEFAULT_CONGESTION_BASE,
            );
            let avoids_hot = |r: &RobustRoute| {
                !r.primary.edges().any(|e| e == hot) && !r.backup.edges().any(|e| e == hot)
            };
            let committed = match moved {
                Ok(out) if avoids_hot(&out.route) => {
                    let occupied: Vec<Hop> = out
                        .route
                        .primary
                        .hops
                        .iter()
                        .chain(out.route.backup.hops.iter())
                        .copied()
                        .collect();
                    if let Err(err) = txn.occupy_hops(self.net, &occupied) {
                        // Defensive: the route was computed against the
                        // transactional state, so the occupy cannot be
                        // rejected; if it ever is, undo the whole probe and
                        // surface the error instead of panicking with
                        // channels stranded.
                        txn.rollback();
                        ctx.invalidate();
                        return Err(err);
                    }
                    txn.commit();
                    Some((occupied, out.route))
                }
                _ => {
                    // No useful move: rewind the release. The rollback
                    // regresses the change clock, and later mutations could
                    // re-advance it past the router context's sync point
                    // (masking the regression detector), so drop the warm
                    // engines explicitly.
                    txn.rollback();
                    ctx.invalidate();
                    None
                }
            };
            if let Some((occupied, route)) = committed {
                if self.prov.journal_enabled() {
                    self.prov.journal_event(NetEvent::Reconfigure {
                        id,
                        released,
                        occupied,
                    });
                }
                self.metrics.reconfig_moved += 1;
                self.prov
                    .connections_mut()
                    .get_mut(&id)
                    .expect("present")
                    .route = ProvisionedRoute::Protected(route);
            }
        }
        Ok(())
    }
}

/// Configuration of one batch-provisioning run: the policy/order knobs of
/// [`crate::batch::provision_batch`] plus the speculative engine's window.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BatchConfig {
    /// Provisioning policy.
    pub policy: Policy,
    /// Demand processing order.
    pub order: BatchOrder,
    /// Speculation window `K` (`--parallel-window`); `<= 1` provisions
    /// serially. Any value yields a bit-identical [`BatchOutcome`] (see
    /// [`crate::speculative`]).
    pub parallel_window: usize,
    /// How the speculative engine schedules each round (`--schedule`);
    /// irrelevant when `parallel_window <= 1`. Every mode yields a
    /// bit-identical [`BatchOutcome`]; they differ in wasted work under
    /// contention.
    pub schedule: ScheduleMode,
    /// Worker threads for the speculative engines (`--threads`); `0`
    /// means auto (the host's available parallelism). Worker count never
    /// changes the outcome, only wall-clock time.
    pub threads: usize,
}

impl BatchConfig {
    /// Serial provisioning under `policy`, demands as given.
    pub fn serial(policy: Policy) -> Self {
        Self {
            policy,
            order: BatchOrder::AsGiven,
            parallel_window: 1,
            schedule: ScheduleMode::default(),
            threads: 0,
        }
    }
}

/// Unified batch entry point: provisions `demands` serially or through the
/// speculative engine according to `cfg.parallel_window`. The outcome is
/// the same either way; only wall-clock time differs.
pub fn run_batch(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    cfg: BatchConfig,
) -> BatchOutcome {
    run_batch_recorded(net, state, demands, cfg, NoopRecorder).0
}

/// As [`run_batch`], threading `recorder` through the speculative engine
/// (commit/abort/retry counters, window-occupancy histogram) and returning
/// its [`SpeculationStats`] (all-zero for serial runs — the serial path is
/// unrecorded by contract).
pub fn run_batch_recorded<R: Recorder>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    cfg: BatchConfig,
    recorder: R,
) -> (BatchOutcome, SpeculationStats) {
    run_batch_journaled(net, state, demands, cfg, recorder, NoopSink)
}

/// As [`run_batch_recorded`], additionally appending one
/// [`NetEvent::Provision`] per provisioned route to `journal` in commit
/// order — the journal replayed over `state` reproduces the outcome's
/// final state regardless of `cfg.parallel_window`.
pub fn run_batch_journaled<R: Recorder, J: EventSink>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    cfg: BatchConfig,
    recorder: R,
    journal: J,
) -> (BatchOutcome, SpeculationStats) {
    if cfg.parallel_window <= 1 {
        let out = provision_batch_journaled(net, state, demands, cfg.policy, cfg.order, journal);
        (out, SpeculationStats::default())
    } else {
        provision_batch_speculative_scheduled(
            net,
            state,
            demands,
            cfg.policy,
            cfg.order,
            cfg.parallel_window,
            cfg.schedule,
            cfg.threads,
            recorder,
            journal,
            &wdm_telemetry::NoopTracer,
        )
    }
}

/// Convenience: run one configuration to completion.
///
/// ```
/// use wdm_core::network::NetworkBuilder;
/// use wdm_sim::prelude::*;
///
/// let net = NetworkBuilder::nsfnet(8).build();
/// let cfg = SimConfig {
///     traffic: TrafficModel::new(1.0, 5.0),
///     duration: 100.0,
///     ..SimConfig::default_with(Policy::CostOnly, 42)
/// };
/// let m = run_sim(&net, cfg);
/// assert_eq!(m.offered, m.admitted + m.blocked);
/// assert!(m.peak_network_load <= 1.0);
/// ```
pub fn run_sim(net: &WdmNetwork, cfg: SimConfig) -> Metrics {
    Simulator::new(net, cfg).run()
}

/// As [`run_sim`], recording telemetry through `recorder` (typically a
/// `&TelemetrySink`; [`Metrics`] itself stays recorder-independent so runs
/// with and without telemetry compare equal).
pub fn run_sim_recorded<R: Recorder>(net: &WdmNetwork, cfg: SimConfig, recorder: R) -> Metrics {
    Simulator::with_recorder(net, cfg, recorder).run()
}

/// As [`run_sim`], recording every state mutation into `journal`
/// (typically `&mut StateJournal` over the fresh initial state) and
/// returning the final residual state alongside the metrics. The journal's
/// replay over that checkpoint equals the returned state bit-identically —
/// the contract `wdm replay --verify` checks.
pub fn run_sim_journaled<J: EventSink>(
    net: &WdmNetwork,
    cfg: SimConfig,
    journal: J,
) -> (Metrics, ResidualState) {
    Simulator::with_recorder_and_journal(net, cfg, NoopRecorder, journal).run_into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::network::NetworkBuilder;

    fn nsfnet() -> WdmNetwork {
        NetworkBuilder::nsfnet(8).build()
    }

    fn base_cfg(policy: Policy, seed: u64) -> SimConfig {
        SimConfig {
            policy,
            traffic: TrafficModel::new(2.0, 5.0),
            duration: 200.0,
            failure_rate: 0.0,
            mean_repair: 10.0,
            reconfig_threshold: None,
            seed,
            switchover_time: 0.001,
            setup_time_per_hop: 0.05,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let net = nsfnet();
        let a = run_sim(&net, base_cfg(Policy::CostOnly, 42));
        let b = run_sim(&net, base_cfg(Policy::CostOnly, 42));
        assert_eq!(a, b);
        let c = run_sim(&net, base_cfg(Policy::CostOnly, 43));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn conservation_all_released_after_departures() {
        let net = nsfnet();
        // Short holding: most connections depart within the horizon.
        let cfg = SimConfig {
            traffic: TrafficModel::new(1.0, 1.0),
            duration: 300.0,
            ..base_cfg(Policy::CostOnly, 7)
        };
        let m = run_sim(&net, cfg);
        assert!(m.offered > 200);
        assert!(m.admitted > 0);
        // Low load: nothing should be blocked on NSFNET with W = 8.
        assert_eq!(m.blocked, 0);
        let snap = m.final_snapshot.unwrap();
        // Only connections still holding at the horizon remain.
        assert!(snap.channels_in_use < 100);
    }

    #[test]
    fn blocking_grows_with_load() {
        let net = nsfnet();
        let light = run_sim(
            &net,
            SimConfig {
                traffic: TrafficModel::new(0.5, 5.0),
                ..base_cfg(Policy::CostOnly, 11)
            },
        );
        let heavy = run_sim(
            &net,
            SimConfig {
                traffic: TrafficModel::new(20.0, 5.0),
                ..base_cfg(Policy::CostOnly, 11)
            },
        );
        assert!(heavy.blocking_probability() > light.blocking_probability());
        assert!(heavy.peak_network_load >= light.peak_network_load);
    }

    #[test]
    fn failures_trigger_switchovers_for_protected_policy() {
        let net = nsfnet();
        let cfg = SimConfig {
            failure_rate: 0.5,
            mean_repair: 5.0,
            traffic: TrafficModel::new(2.0, 20.0),
            duration: 400.0,
            ..base_cfg(Policy::CostOnly, 3)
        };
        let m = run_sim(&net, cfg);
        assert!(m.failures_injected > 0);
        assert!(
            m.fast_switchovers > 0,
            "protected connections must use their backups: {m:?}"
        );
    }

    #[test]
    fn primary_only_never_switches_fast() {
        let net = nsfnet();
        let cfg = SimConfig {
            failure_rate: 0.5,
            mean_repair: 5.0,
            traffic: TrafficModel::new(2.0, 20.0),
            duration: 400.0,
            ..base_cfg(Policy::PrimaryOnly, 3)
        };
        let m = run_sim(&net, cfg);
        assert!(m.failures_injected > 0);
        assert_eq!(m.fast_switchovers, 0);
        assert!(m.passive_recoveries + m.recovery_failures > 0);
    }

    #[test]
    fn reconfiguration_fires_under_pressure() {
        let net = nsfnet();
        let cfg = SimConfig {
            traffic: TrafficModel::new(12.0, 8.0),
            duration: 300.0,
            reconfig_threshold: Some(0.6),
            ..base_cfg(Policy::CostOnly, 5)
        };
        let m = run_sim(&net, cfg);
        assert!(m.reconfig_events > 0, "expected reconfigurations: {m:?}");
    }

    #[test]
    fn recovery_time_active_is_much_smaller_than_passive() {
        let net = nsfnet();
        let mk = |policy| SimConfig {
            failure_rate: 0.5,
            mean_repair: 5.0,
            traffic: TrafficModel::new(2.0, 20.0),
            duration: 400.0,
            ..base_cfg(policy, 3)
        };
        let active = run_sim(&net, mk(Policy::CostOnly));
        let passive = run_sim(&net, mk(Policy::PrimaryOnly));
        assert!(active.recovery_events > 0);
        assert!(passive.recovery_events > 0);
        // Active recoveries are dominated by 0.001 switchovers; passive ones
        // pay >= 0.05 per hop (at least one hop).
        assert!(
            active.mean_recovery_time() < passive.mean_recovery_time() / 2.0,
            "active {} vs passive {}",
            active.mean_recovery_time(),
            passive.mean_recovery_time()
        );
        assert!(passive.mean_recovery_time() >= 0.05);
    }

    #[test]
    fn time_weighted_load_is_consistent() {
        let net = nsfnet();
        let m = run_sim(
            &net,
            SimConfig {
                traffic: TrafficModel::new(4.0, 10.0),
                duration: 300.0,
                ..base_cfg(Policy::CostOnly, 21)
            },
        );
        let tavg = m.time_avg_network_load();
        assert!(tavg > 0.0 && tavg <= 1.0 + 1e-9, "time-avg {tavg}");
        assert!(tavg <= m.peak_network_load + 1e-9);
        // Arrival-sampled and time-weighted means agree loosely under
        // Poisson sampling (PASTA); allow generous slack.
        assert!(
            (tavg - m.mean_network_load()).abs() < 0.15,
            "time-avg {tavg} vs sampled {}",
            m.mean_network_load()
        );
    }

    #[test]
    fn joint_policy_runs_end_to_end() {
        let net = nsfnet();
        let m = run_sim(&net, base_cfg(Policy::Joint { a: 2.0 }, 9));
        assert!(m.admitted > 0);
        assert!(m.mean_route_cost() > 0.0);
    }

    #[test]
    fn spans_and_flight_records_cover_every_request() {
        use wdm_core::journal::NoopSink;
        use wdm_telemetry::SpanBuffer;

        let net = nsfnet();
        let tracer = SpanBuffer::new();
        let flight = FlightRecorder::new();
        let sim = Simulator::with_observability(
            &net,
            base_cfg(Policy::CostOnly, 17),
            NoopRecorder,
            NoopSink,
            &tracer,
            Some(&flight),
        );
        let m = sim.run();
        assert!(m.offered > 0);

        // Every arrival opens exactly one root span.
        assert_eq!(tracer.requests_begun(), m.offered);
        let records = tracer.records();
        let roots = records.iter().filter(|r| r.phase == Phase::Request).count() as u64;
        assert_eq!(roots, m.offered);

        // One flight record per arrival, and sub-phase time never exceeds
        // the root span it was measured inside.
        assert_eq!(flight.total_requests(), m.offered);
        let dump = flight.dump();
        let mut routed = 0u64;
        for rec in &dump.records {
            let sub_sum: u64 = rec.named_phases().iter().map(|&(_, ns)| ns).sum();
            assert!(sub_sum <= rec.total_ns, "sub-phases exceed root: {rec:?}");
            match rec.outcome.as_str() {
                "routed" => {
                    routed += 1;
                    assert!(rec.footprint_links > 0);
                }
                "blocked" => assert_eq!(rec.footprint_links, 0),
                other => panic!("unexpected outcome {other}"),
            }
        }
        // The ring holds the most recent records only; counts within it
        // must be consistent with its own contents.
        assert!(routed <= m.admitted);
        // Un-journaled run: correlation sequence stays 0 for every record.
        assert!(dump.records.iter().all(|r| r.journal_seq == 0));
    }
}
