//! Shard-parallel batch provisioning — static topology partitioning with
//! per-shard worker mirrors, bit-identical to the serial fold.
//!
//! The conflict-groups engine ([`crate::speculative`]) already avoids
//! wasted speculation, but every round still routes against one frozen
//! borrow of the live state and synchronises on one commit sweep. This
//! module goes one step further: it partitions the **topology** itself
//! ([`TopologyPartition`]) so that demands confined to different shards
//! cannot conflict *by construction*, and gives every shard a worker that
//! routes its queue with **no inter-shard synchronisation** — each worker
//! owns a long-lived [`ResidualState`] **mirror** and a persistent warm
//! [`RouterCtx`], and applies its own speculative occupations to its
//! mirror as it goes, so consecutive intra-shard demands see each other
//! exactly as the serial fold would.
//!
//! ## Round structure
//!
//! 1. **Plan.** Classify the next `K` pending demands (the same
//!    `--parallel-window` round size as the other schedule modes — round
//!    size bounds how much work one mispredicted abort can poison)
//!    through the [`ShardMap`] ([`FootprintOracle`] ball ∪ endpoint
//!    shards):
//!    intra-shard demands join their shard's queue (in processing order);
//!    cross-shard demands are marked for inline serial routing.
//! 2. **Fan-out.** Up to `N` threads run the active shard workers
//!    (longest-queue-first onto the least-loaded thread — deterministic,
//!    and irrelevant to results since workers share nothing). Each worker
//!    routes its queue sequentially against its own mirror, occupying
//!    each successful route into the mirror so later queue members see
//!    it.
//! 3. **Commit sweep**, on the caller's thread, in exact processing
//!    order over the round's whole range: speculated results commit under
//!    the owner-stamp rule below; cross-shard demands and aborted members
//!    route inline at their serial slot (live = serial there, same as
//!    conflict-groups mode). Every slot of the range is consumed, so the
//!    engine always progresses.
//! 4. **Reconcile.** Each mirror is patched back to equality with the
//!    live state by a channel-level set difference — release what the
//!    worker occupied but the sweep did not commit, occupy what the sweep
//!    committed but the worker did not apply. Mirrors are only ever
//!    mutated through [`ResidualState::occupy`]/[`release`], so each
//!    mirror's change clock advances monotonically in its **own lineage**
//!    forever and the worker's incremental engine sync stays sound — no
//!    `invalidate`, no skeleton rebuilds, warm across the whole batch.
//!
//! ## Why cross-shard demands cannot perturb the serial order
//!
//! A cross-shard demand never executes speculatively: the sweep reaches
//! its slot only after every earlier demand of the batch has committed
//! its serial result, routes it on the live state (= the serial state at
//! that slot, rule 1 of the speculative commit protocol) and commits
//! unconditionally. Shard members that would race with it are caught by
//! revalidation: the inline commit stamps its links with a *foreign*
//! owner, and a speculated route commits only if every link it uses is
//! either untouched this round or stamped by **its own shard** —
//! own-shard stamps are exactly the occupations the worker already
//! applied to its mirror before routing that member (earlier queue
//! members of the same shard, committed unchanged by the sweep), so the
//! route's links carry identical occupancy in the worker view and the
//! serial state, and under the rule-2 guard (link-local policy, distinct
//! static costs) the result is the serial optimum. A route that fails
//! the stamp check gets one more chance — **channel revalidation**:
//! occupancy within a batch is monotone and an unpoisoned lineage has
//! committed every earlier own route unchanged, so the mirror only ever
//! *lags* the live state; if every channel the route uses is still free
//! live, any live-feasible competitor was already mirror-feasible when
//! the route won the argmin there, and the route is still the unique
//! serial optimum — it commits (stamping contested links FOREIGN so no
//! one commits across them again this round). Only a genuine channel
//! collision aborts: the first abort in a shard **poisons** the rest of
//! that shard's round — later members routed on a mirror lineage the
//! serial state diverged from — and each aborted member retries inline
//! at its own slot.
//!
//! Without the rule-2 guard (load-sensitive policy or shared link costs),
//! or with `window <= 1` / one shard, the engine delegates to
//! conflict-groups scheduling, which degenerates to the warm serial loop
//! — the bit-identity contract holds for every policy either way.

use crate::batch::{processing_order, BatchOrder, BatchOutcome, Demand};
use crate::policy::{Policy, ProvisionedRoute};
use crate::speculative::{
    link_local_revalidation_sound, run_conflict_groups, worker_count, SpeculationStats,
};
use std::collections::HashSet;
use wdm_core::aux_engine::RouterCtx;
use wdm_core::error::RoutingError;
use wdm_core::journal::{EventSink, NetEvent};
use wdm_core::load::load_snapshot;
use wdm_core::network::{ResidualState, WdmNetwork};
use wdm_core::partition::{DemandClass, ShardMap, TopologyPartition};
use wdm_core::predict::FootprintOracle;
use wdm_core::semilightpath::Hop;
use wdm_telemetry::{Counter, Hist, NoopRecorder, Phase, Recorder, Tracer};

/// Seed for the deterministic topology partition. Fixed: the partition is
/// part of the observable schedule and batch runs must reproduce
/// bit-for-bit across processes.
const PARTITION_SEED: u64 = 0x5AD5;

/// Owner stamp for links occupied by inline (serial-slot) commits.
const FOREIGN: u32 = u32::MAX;

/// One shard's long-lived routing island: a state mirror reconciled to
/// the live state between rounds, a persistent warm router context, and
/// the current round's queue/results.
struct ShardWorker<T: Tracer> {
    mirror: ResidualState,
    ctx: RouterCtx<NoopRecorder, T>,
    /// Demand ids queued this round, in processing order.
    queue: Vec<usize>,
    /// One result per queue entry after the fan-out.
    results: Vec<Option<Result<ProvisionedRoute, RoutingError>>>,
    /// Channels this worker occupied on its mirror this round.
    applied: Vec<Hop>,
    /// Set when a member of this shard aborted this round: the remaining
    /// members were routed on a diverged mirror lineage and must retry
    /// inline.
    poisoned: bool,
}

impl<T: Tracer> ShardWorker<T> {
    /// Routes the queued demands sequentially against the mirror,
    /// applying each success so later queue members see it — the exact
    /// visibility the serial fold gives consecutive intra-shard demands.
    fn run_round(&mut self, net: &WdmNetwork, demands: &[Demand], policy: Policy) {
        for qi in 0..self.queue.len() {
            let d = demands[self.queue[qi]];
            let res = policy.route_ctx(&mut self.ctx, net, &self.mirror, d.src, d.dst);
            if let Ok(route) = &res {
                self.applied.extend(route.channels());
                route
                    .occupy(net, &mut self.mirror)
                    .expect("route computed on the mirror it occupies");
            }
            self.results.push(Some(res));
        }
    }
}

/// Routes demand `id` on the live state at its exact serial slot and
/// commits whatever comes back (rule 1: live = serial here). Stamps the
/// route's links with the [`FOREIGN`] owner so no later shard member of
/// the round can commit across them.
#[allow(clippy::too_many_arguments)]
fn route_inline_sharded<J: EventSink, T: Tracer + Send, O: FootprintOracle>(
    net: &WdmNetwork,
    st: &mut ResidualState,
    demand: Demand,
    id: usize,
    policy: Policy,
    ctx: &mut RouterCtx<NoopRecorder, T>,
    tracer: &T,
    tracing: bool,
    journal: &mut J,
    oracle: &mut O,
    round: u32,
    touch_round: &mut [u32],
    touch_owner: &mut [u32],
    round_channels: &mut Vec<Hop>,
    committed_any: &mut bool,
    provisioned: &mut Vec<(usize, ProvisionedRoute)>,
    rejected: &mut Vec<usize>,
    total_cost: &mut f64,
) {
    let res = policy.route_ctx(ctx, net, &*st, demand.src, demand.dst);
    if tracing {
        tracer.absorb_worker(ctx.tracer());
    }
    match res {
        Ok(route) => {
            let commit_t0 = tracer.now_ns();
            let fp = route.footprint();
            oracle.observe(demand.src, demand.dst, &fp);
            for e in &fp.links {
                touch_round[e.index()] = round;
                touch_owner[e.index()] = FOREIGN;
            }
            round_channels.extend(route.channels());
            route
                .occupy(net, st)
                .expect("inline route computed on the live state");
            if journal.enabled() {
                journal.record(NetEvent::Provision {
                    id: id as u64,
                    channels: route.channels(),
                });
            }
            *total_cost += route.total_cost();
            provisioned.push((id, route));
            *committed_any = true;
            if tracing {
                tracer.record_earlier(0, Phase::Commit, commit_t0);
            }
        }
        Err(_) => rejected.push(id),
    }
}

/// The sharded engine with a caller-supplied oracle. Classification and
/// footprints only shape the schedule — any oracle yields the same
/// bit-identical [`BatchOutcome`]; mispredictions cost retries (escaped
/// routes) or parallelism (demands classified cross-shard needlessly).
#[allow(clippy::too_many_arguments)]
pub fn provision_batch_sharded<R, J, T, O>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    window: usize,
    shards: usize,
    threads: usize,
    recorder: R,
    journal: J,
    tracer: &T,
    oracle: &mut O,
) -> (BatchOutcome, SpeculationStats)
where
    R: Recorder,
    J: EventSink,
    T: Tracer + Send,
    O: FootprintOracle,
{
    run_sharded(
        net, state, demands, policy, order, window, shards, threads, recorder, journal, tracer,
        oracle,
    )
}

/// The sharded engine proper. See the module docs for the protocol.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded<R, J, T, O>(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    window: usize,
    shards: usize,
    threads: usize,
    recorder: R,
    mut journal: J,
    tracer: &T,
    oracle: &mut O,
) -> (BatchOutcome, SpeculationStats)
where
    R: Recorder,
    J: EventSink,
    T: Tracer + Send,
    O: FootprintOracle,
{
    let shards_eff = shards.clamp(1, net.node_count().max(1));
    let guard = link_local_revalidation_sound(policy, net);
    if !guard || window <= 1 || shards_eff <= 1 {
        // Only rule 1 could commit (or there is nothing to parallelise):
        // delegate to conflict-groups, which degenerates to the warm
        // serial loop and keeps the bit-identity contract.
        return run_conflict_groups(
            net, state, demands, policy, order, window, threads, recorder, journal, tracer, oracle,
        );
    }

    let mut st = state.clone();
    let idx = processing_order(net, &st, demands, order);
    let tracing = tracer.enabled();

    let shard_map = ShardMap::new(TopologyPartition::grow(net, shards_eff, PARTITION_SEED));
    let mut shard_map = shard_map;
    let mut workers: Vec<ShardWorker<T>> = (0..shards_eff)
        .map(|_| ShardWorker {
            mirror: st.clone(),
            ctx: RouterCtx::with_recorder_and_tracer(NoopRecorder, tracer.fork_worker()),
            queue: Vec::new(),
            results: Vec::new(),
            applied: Vec::new(),
            poisoned: false,
        })
        .collect();
    let mut inline_ctx: RouterCtx<NoopRecorder, T> =
        RouterCtx::with_recorder_and_tracer(NoopRecorder, tracer.fork_worker());

    // (round, owner) stamps per link: the reservation lock table of the
    // commit sweep. A link is "touched this round" iff its round stamp is
    // current; the owner says which shard's commits touched it.
    let mut touch_round = vec![0u32; net.link_count()];
    let mut touch_owner = vec![FOREIGN; net.link_count()];
    let mut round: u32 = 0;

    /// The sweep's per-slot classification for one round.
    enum Slot {
        /// `(shard, queue position)` of a speculated member.
        Member(u32, usize),
        /// Cross-shard: routed inline at its serial slot.
        Inline,
    }
    let mut slots: Vec<Slot> = Vec::new();
    let mut prefix: Vec<u64> = vec![0; shards_eff + 1];
    let mut round_aborts: Vec<u64> = vec![0; shards_eff];
    let mut round_channels: Vec<Hop> = Vec::new();
    let mut committed_set: HashSet<(usize, u8)> = HashSet::new();
    let mut applied_set: HashSet<(usize, u8)> = HashSet::new();

    let mut provisioned = Vec::new();
    let mut rejected = Vec::new();
    let mut total_cost = 0.0;
    let mut stats = SpeculationStats::default();

    let mut pos = 0;
    while pos < idx.len() {
        stats.rounds += 1;
        round = round.wrapping_add(1);
        if round == 0 {
            // u32 stamp wraparound: old stamps could alias the new round.
            touch_round.iter_mut().for_each(|r| *r = 0);
            round = 1;
        }

        // 1. Plan: classify the next K demands in processing order. One
        // window total (not K per shard): an abort poisons the rest of
        // its shard's round, so round size directly bounds the cascade a
        // single foreign conflict can cause.
        let range = window.min(idx.len() - pos);
        slots.clear();
        for w in workers.iter_mut() {
            w.queue.clear();
            w.results.clear();
            w.applied.clear();
            w.poisoned = false;
        }
        let mut cut = 0u64;
        for k in 0..range {
            let d = demands[idx[pos + k]];
            match shard_map.classify(oracle, d.src, d.dst) {
                DemandClass::Intra(s) => {
                    let w = &mut workers[s as usize];
                    slots.push(Slot::Member(s, w.queue.len()));
                    w.queue.push(idx[pos + k]);
                }
                DemandClass::Cross => {
                    cut += 1;
                    slots.push(Slot::Inline);
                }
            }
        }
        stats.cut_demands += cut;
        if recorder.enabled() {
            recorder.observe(Hist::WindowOccupancy, range as u64);
            if cut > 0 {
                recorder.add(Counter::ShardedCutDemands, cut);
            }
            for w in &workers {
                if !w.queue.is_empty() {
                    recorder.observe(Hist::ShardOccupancy, w.queue.len() as u64);
                }
            }
        }
        let members_total: u64 = workers.iter().map(|w| w.queue.len() as u64).sum();
        for s in 0..shards_eff {
            prefix[s + 1] = prefix[s] + workers[s].queue.len() as u64;
        }

        // 2. Fan-out: active shards onto up to `threads` OS threads,
        // longest queue first onto the least-loaded thread. Deterministic,
        // and the assignment cannot change any result — workers share
        // nothing.
        {
            let mut active: Vec<&mut ShardWorker<T>> =
                workers.iter_mut().filter(|w| !w.queue.is_empty()).collect();
            active.sort_by_key(|w| std::cmp::Reverse(w.queue.len()));
            let nt = worker_count(threads, active.len());
            if nt <= 1 {
                for w in active {
                    w.run_round(net, demands, policy);
                }
            } else {
                let mut bins: Vec<Vec<&mut ShardWorker<T>>> = (0..nt).map(|_| Vec::new()).collect();
                let mut loads = vec![0usize; nt];
                for w in active {
                    let t = (0..nt).min_by_key(|&t| (loads[t], t)).expect("nt > 0");
                    loads[t] += w.queue.len();
                    bins[t].push(w);
                }
                crossbeam::thread::scope(|scope| {
                    for bin in bins {
                        scope.spawn(move |_| {
                            for w in bin {
                                w.run_round(net, demands, policy);
                            }
                        });
                    }
                })
                .expect("shard worker panicked");
            }
        }
        if tracing {
            // Fold worker spans back in shard-id order; the sweep below
            // addresses each member's attempt via `prefix[s] + q`.
            for w in &workers {
                if !w.queue.is_empty() {
                    tracer.absorb_worker(w.ctx.tracer());
                }
            }
        }

        // 3. Commit sweep in exact processing order over the whole range.
        let mut committed_any = false;
        let mut appended: u64 = 0; // inline attempts absorbed since the fold
        round_aborts.iter_mut().for_each(|a| *a = 0);
        round_channels.clear();
        for (k, slot) in slots.iter().enumerate() {
            let i = idx[pos + k];
            let (s, q) = match *slot {
                Slot::Inline => {
                    stats.inline_routes += 1;
                    if recorder.enabled() {
                        recorder.add(Counter::SpeculativeInlineRoutes, 1);
                    }
                    route_inline_sharded(
                        net,
                        &mut st,
                        demands[i],
                        i,
                        policy,
                        &mut inline_ctx,
                        tracer,
                        tracing,
                        &mut journal,
                        oracle,
                        round,
                        &mut touch_round,
                        &mut touch_owner,
                        &mut round_channels,
                        &mut committed_any,
                        &mut provisioned,
                        &mut rejected,
                        &mut total_cost,
                    );
                    appended += 1;
                    continue;
                }
                Slot::Member(s, q) => (s, q),
            };
            let back = (members_total - 1 - (prefix[s as usize] + q as u64)) + appended;
            let w = &mut workers[s as usize];
            let res = w.results[q].take().expect("one result per queue member");
            let poisoned = w.poisoned;
            let committable = !poisoned
                && match &res {
                    // Rule 1 (nothing committed yet: frozen = live for the
                    // head of every shard lineage) or the owner-stamp
                    // revalidation described in the module docs.
                    Ok(route) => {
                        !committed_any
                            || route.footprint().links.iter().all(|e| {
                                touch_round[e.index()] != round || touch_owner[e.index()] == s
                            })
                    }
                    // Monotone failures (guard is on in this path).
                    Err(err) => {
                        !committed_any
                            || matches!(
                                err,
                                RoutingError::DegenerateRequest
                                    | RoutingError::NoDisjointPair
                                    | RoutingError::Unreachable { .. }
                            )
                    }
                };
            // Channel-level revalidation for routes the stamp rule would
            // abort: the worker's mirror only ever lags the live state
            // (occupancy within a batch is monotone, and an unpoisoned
            // lineage has committed every earlier own route unchanged), so
            // any live-feasible competitor was already feasible on the
            // mirror when this route won the argmin there. If every channel
            // the route uses is still free on the live state, the route is
            // live-feasible and therefore still the unique serial optimum —
            // commit it without a retry, and without poisoning the shard.
            let channel_ok = !committable
                && !poisoned
                && matches!(&res, Ok(route) if route
                    .channels()
                    .iter()
                    .all(|h| st.is_avail(net, h.edge, h.wavelength)));
            if committable || channel_ok {
                stats.commits += 1;
                if recorder.enabled() {
                    recorder.add(Counter::SpeculativeCommits, 1);
                    if channel_ok {
                        recorder.add(Counter::ShardedVerifiedCommits, 1);
                    }
                }
                match res {
                    Ok(route) => {
                        let commit_t0 = tracer.now_ns();
                        let fp = route.footprint();
                        oracle.observe(demands[i].src, demands[i].dst, &fp);
                        for e in &fp.links {
                            if channel_ok {
                                // The worker's own mirror carries this
                                // route, so fresh links take the shard's
                                // own stamp — but a link some *other*
                                // owner stamped this round is demoted to
                                // FOREIGN: that owner's mirror lacks this
                                // route's occupancy, so nobody may commit
                                // across it again within the round.
                                if touch_round[e.index()] != round {
                                    touch_round[e.index()] = round;
                                    touch_owner[e.index()] = s;
                                } else if touch_owner[e.index()] != s {
                                    touch_owner[e.index()] = FOREIGN;
                                }
                            } else {
                                touch_round[e.index()] = round;
                                touch_owner[e.index()] = s;
                            }
                        }
                        round_channels.extend(route.channels());
                        route
                            .occupy(net, &mut st)
                            .expect("committed route's links carry the worker's own occupancy");
                        if journal.enabled() {
                            journal.record(NetEvent::Provision {
                                id: i as u64,
                                channels: route.channels(),
                            });
                        }
                        total_cost += route.total_cost();
                        provisioned.push((i, route));
                        committed_any = true;
                        if tracing {
                            tracer.record_earlier(back, Phase::Commit, commit_t0);
                        }
                    }
                    Err(_) => rejected.push(i),
                }
            } else {
                // Abort: either the member's links were touched by a
                // foreign owner (its route escaped the shard, or an
                // inline commit crossed it), or an earlier member of the
                // shard already aborted (lineage divergence). Rule 3,
                // sharded flavor: poison the shard's round and retry this
                // demand inline at its serial slot.
                w.poisoned = true;
                stats.aborts += 1;
                stats.retries += 1;
                round_aborts[s as usize] += 1;
                if recorder.enabled() {
                    recorder.add(Counter::SpeculativeAborts, 1);
                    recorder.add(Counter::SpeculativeRetries, 1);
                    if poisoned {
                        recorder.add(Counter::ShardedLineageAborts, 1);
                    } else {
                        match &res {
                            Ok(route) => {
                                recorder.add(Counter::SpeculativeAbortConflict, 1);
                                let escaped = route
                                    .footprint()
                                    .links
                                    .iter()
                                    .any(|e| shard_map.partition().link_shard(*e) != Some(s));
                                if escaped {
                                    recorder.add(Counter::ShardedEscapeAborts, 1);
                                }
                            }
                            Err(_) => recorder.add(Counter::SpeculativeAbortLoadShift, 1),
                        }
                    }
                }
                if tracing {
                    tracer.record_earlier(back, Phase::Abort, tracer.now_ns());
                }
                route_inline_sharded(
                    net,
                    &mut st,
                    demands[i],
                    i,
                    policy,
                    &mut inline_ctx,
                    tracer,
                    tracing,
                    &mut journal,
                    oracle,
                    round,
                    &mut touch_round,
                    &mut touch_owner,
                    &mut round_channels,
                    &mut committed_any,
                    &mut provisioned,
                    &mut rejected,
                    &mut total_cost,
                );
                appended += 1;
            }
        }
        if recorder.enabled() {
            for s in 0..shards_eff {
                if !workers[s].queue.is_empty() {
                    recorder.observe(Hist::ShardAborts, round_aborts[s]);
                }
            }
        }

        // 4. Reconcile every mirror back to the live state by channel set
        // difference. Only occupy/release are used, so each mirror's
        // change clock stays monotone in its own lineage and the warm
        // worker engines remain sound.
        committed_set.clear();
        committed_set.extend(
            round_channels
                .iter()
                .map(|h| (h.edge.index(), h.wavelength.0)),
        );
        for w in workers.iter_mut() {
            applied_set.clear();
            applied_set.extend(w.applied.iter().map(|h| (h.edge.index(), h.wavelength.0)));
            for h in &w.applied {
                if !committed_set.contains(&(h.edge.index(), h.wavelength.0)) {
                    w.mirror
                        .release(h.edge, h.wavelength)
                        .expect("speculatively applied channel is occupied on the mirror");
                }
            }
            for h in &round_channels {
                if !applied_set.contains(&(h.edge.index(), h.wavelength.0)) {
                    w.mirror
                        .occupy(net, h.edge, h.wavelength)
                        .expect("committed channel is free on the reconciled mirror");
                }
            }
        }

        pos += range;
    }

    let final_load = load_snapshot(net, &st);
    (
        BatchOutcome {
            provisioned,
            rejected,
            total_cost,
            final_load,
            state: st,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{full_mesh_demands, provision_batch};
    use crate::schedule::ScheduleMode;
    use crate::speculative::provision_batch_speculative_scheduled;
    use wdm_core::journal::NoopSink;
    use wdm_core::network::NetworkBuilder;
    use wdm_core::predict::LocalityPredictor;
    use wdm_telemetry::{NoopTracer, SpanBuffer, TelemetrySink};

    /// Two well-connected distinct-cost clusters joined by one bridge
    /// pair: a topology where sharding actually separates traffic.
    /// Conversion is free so the rule-2 guard holds — these tests are
    /// meant to exercise the sharded engine, not its fallback.
    fn two_cluster_net(w: usize) -> WdmNetwork {
        use wdm_core::conversion::ConversionTable;
        let mut b = NetworkBuilder::new(w);
        let n = 16u32;
        let nodes: Vec<_> = (0..n)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.0 }))
            .collect();
        let mut c = 1.0;
        let mut link = |b: &mut NetworkBuilder, i: usize, j: usize| {
            b.add_link(nodes[i], nodes[j], c);
            c += 0.17;
        };
        for base in [0usize, 8] {
            for i in 0..8 {
                for j in [(i + 1) % 8, (i + 3) % 8] {
                    link(&mut b, base + i, base + j);
                    link(&mut b, base + j, base + i);
                }
            }
        }
        // One bidirected bridge between the clusters.
        link(&mut b, 3, 11);
        link(&mut b, 11, 3);
        b.build()
    }

    fn assert_outcomes_identical(a: &BatchOutcome, b: &BatchOutcome) {
        assert_eq!(a.provisioned, b.provisioned);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
        assert_eq!(a.final_load, b.final_load);
        assert_eq!(a.state, b.state);
    }

    #[test]
    fn sharded_matches_serial_across_shards_threads_and_windows() {
        let net = two_cluster_net(4);
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(16, 1);
        let serial = provision_batch(&net, &st, &demands, Policy::CostOnly, BatchOrder::AsGiven);
        for shards in [1, 2, 4] {
            for threads in [1, 2] {
                for window in [1, 2, 8, 64] {
                    let (out, stats) = provision_batch_speculative_scheduled(
                        &net,
                        &st,
                        &demands,
                        Policy::CostOnly,
                        BatchOrder::AsGiven,
                        window,
                        ScheduleMode::Sharded { shards },
                        threads,
                        NoopRecorder,
                        NoopSink,
                        &NoopTracer,
                    );
                    assert_outcomes_identical(&serial, &out);
                    assert_eq!(
                        stats.commits + stats.retries + stats.inline_routes,
                        demands.len() as u64,
                        "shards={shards} threads={threads} window={window}"
                    );
                    assert_eq!(stats.aborts, stats.retries);
                }
            }
        }
    }

    #[test]
    fn sharded_counters_match_stats() {
        let net = two_cluster_net(4);
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(16, 1);
        let sink = TelemetrySink::new();
        let mut oracle = LocalityPredictor::with_default_radius(&net);
        let (_, stats) = provision_batch_sharded(
            &net,
            &st,
            &demands,
            Policy::CostOnly,
            BatchOrder::AsGiven,
            16,
            2,
            1,
            &sink,
            NoopSink,
            &NoopTracer,
            &mut oracle,
        );
        let snap = sink.snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        assert_eq!(counter("speculative_commits"), stats.commits);
        assert_eq!(counter("speculative_aborts"), stats.aborts);
        assert_eq!(counter("speculative_retries"), stats.retries);
        assert_eq!(counter("speculative_inline_routes"), stats.inline_routes);
        assert_eq!(counter("sharded_cut_demands"), stats.cut_demands);
        // Cross-shard demands exist (the full mesh crosses the bridge)
        // and every one routed inline.
        assert!(stats.cut_demands > 0);
        assert_eq!(stats.cut_demands, stats.inline_routes);
        // Shard occupancy was recorded for the active shards.
        assert!(snap.histograms.contains_key("shard_occupancy"));
        assert!(snap.histograms.contains_key("shard_aborts"));
        // No routing telemetry leaks from the speculated calls.
        assert_eq!(counter("suurballe_searches"), 0);
    }

    #[test]
    fn observed_sharded_attaches_spans_to_every_attempt() {
        let net = two_cluster_net(4);
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(16, 1);
        let tracer = SpanBuffer::new();
        let mut oracle = LocalityPredictor::with_default_radius(&net);
        let (out, stats) = provision_batch_sharded(
            &net,
            &st,
            &demands,
            Policy::CostOnly,
            BatchOrder::AsGiven,
            16,
            2,
            2,
            NoopRecorder,
            NoopSink,
            &tracer,
            &mut oracle,
        );
        // One request ordinal per routing attempt: speculated
        // (commits + aborts) plus inline (cut demands + retries).
        assert_eq!(
            tracer.requests_begun(),
            stats.commits + stats.aborts + stats.inline_routes + stats.retries
        );
        let recs = tracer.records();
        let commits = recs.iter().filter(|r| r.phase == Phase::Commit).count();
        assert_eq!(commits, out.provisioned.len());
        let aborts = recs.iter().filter(|r| r.phase == Phase::Abort).count() as u64;
        assert_eq!(aborts, stats.aborts);
    }

    #[test]
    fn uniform_costs_delegate_to_the_degenerate_serial_loop() {
        // NSFNET: the rule-2 guard is off, so sharded mode must fall back
        // to the warm serial loop and still match serially.
        let net = NetworkBuilder::nsfnet(8).build();
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(14, 1);
        let policy = Policy::Joint { a: 2.0 };
        let serial = provision_batch(&net, &st, &demands, policy, BatchOrder::LongestFirst);
        let (out, stats) = provision_batch_speculative_scheduled(
            &net,
            &st,
            &demands,
            policy,
            BatchOrder::LongestFirst,
            8,
            ScheduleMode::Sharded { shards: 4 },
            2,
            NoopRecorder,
            NoopSink,
            &NoopTracer,
        );
        assert_outcomes_identical(&serial, &out);
        assert_eq!(stats.commits, demands.len() as u64);
        assert_eq!(stats.aborts, 0);
        assert_eq!(stats.cut_demands, 0);
        assert_eq!(stats.rounds, demands.len() as u64);
    }
}
