//! Dynamic traffic generation: Poisson arrivals, exponential holding times,
//! random node pairs — the standard model of the works the paper cites
//! (Mohan–Somani, Mokhtar–Azizoglu, Kodialam–Lakshman).

use rand::Rng;
use wdm_graph::NodeId;

/// Holding-time distribution (all parameterised by their mean).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum HoldingDist {
    /// Exponential (memoryless — the classic Erlang model).
    Exponential,
    /// Deterministic (every connection holds exactly the mean).
    Deterministic,
    /// Pareto with shape `alpha > 1` (heavy-tailed session lengths;
    /// `alpha ≤ 2` has infinite variance). Scale is derived from the mean.
    Pareto {
        /// Tail index (must exceed 1 for a finite mean).
        alpha: f64,
    },
}

/// How request endpoints are drawn.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PairSelection {
    /// Uniform over ordered pairs of distinct nodes.
    Uniform,
    /// A fraction `bias` of requests terminate at `hub` (datacenter-style
    /// hotspot traffic); the rest are uniform.
    Hotspot {
        /// The hotspot node.
        hub: u32,
        /// Fraction of requests whose destination is the hub (0..1).
        bias: f64,
    },
}

/// Traffic process parameters.
///
/// Offered load in Erlangs is `arrival_rate × mean_holding`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrafficModel {
    /// Request arrival rate `λ` (per time unit, Poisson).
    pub arrival_rate: f64,
    /// Mean connection holding time `1/μ`.
    pub mean_holding: f64,
    /// Holding-time distribution.
    pub holding_dist: HoldingDist,
    /// Endpoint selection.
    pub pairs: PairSelection,
}

impl TrafficModel {
    /// Creates the classic model: Poisson arrivals, exponential holding,
    /// uniform pairs. Both parameters must be positive.
    pub fn new(arrival_rate: f64, mean_holding: f64) -> Self {
        assert!(arrival_rate > 0.0 && mean_holding > 0.0);
        Self {
            arrival_rate,
            mean_holding,
            holding_dist: HoldingDist::Exponential,
            pairs: PairSelection::Uniform,
        }
    }

    /// Replaces the holding-time distribution (builder style).
    pub fn with_holding(mut self, dist: HoldingDist) -> Self {
        if let HoldingDist::Pareto { alpha } = dist {
            assert!(alpha > 1.0, "Pareto needs alpha > 1 for a finite mean");
        }
        self.holding_dist = dist;
        self
    }

    /// Replaces the endpoint selection (builder style).
    pub fn with_pairs(mut self, pairs: PairSelection) -> Self {
        if let PairSelection::Hotspot { bias, .. } = pairs {
            assert!((0.0..=1.0).contains(&bias));
        }
        self.pairs = pairs;
        self
    }

    /// Offered load in Erlangs.
    pub fn erlangs(&self) -> f64 {
        self.arrival_rate * self.mean_holding
    }

    /// Samples the next inter-arrival gap.
    pub fn next_interarrival(&self, rng: &mut impl Rng) -> f64 {
        sample_exp(rng, self.arrival_rate)
    }

    /// Samples a holding time from the configured distribution.
    pub fn holding(&self, rng: &mut impl Rng) -> f64 {
        match self.holding_dist {
            HoldingDist::Exponential => sample_exp(rng, 1.0 / self.mean_holding),
            HoldingDist::Deterministic => self.mean_holding,
            HoldingDist::Pareto { alpha } => {
                // mean = scale * alpha / (alpha - 1)  =>  scale from mean.
                let scale = self.mean_holding * (alpha - 1.0) / alpha;
                let u: f64 = 1.0 - rng.gen::<f64>();
                scale / u.powf(1.0 / alpha)
            }
        }
    }

    /// Draws the endpoints of one request.
    pub fn draw_pair(&self, n: usize, rng: &mut impl Rng) -> (NodeId, NodeId) {
        match self.pairs {
            PairSelection::Uniform => random_pair(n, rng),
            PairSelection::Hotspot { hub, bias } => {
                let hub = hub as usize % n;
                if rng.gen_bool(bias) {
                    // Destination pinned to the hub; source uniform != hub.
                    let mut s = rng.gen_range(0..n - 1);
                    if s >= hub {
                        s += 1;
                    }
                    (NodeId::from(s), NodeId::from(hub))
                } else {
                    random_pair(n, rng)
                }
            }
        }
    }
}

/// Exponential sample with rate `rate` via inverse transform.
pub fn sample_exp(rng: &mut impl Rng, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    // gen::<f64>() ∈ [0,1); flip so ln's argument is in (0,1].
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Uniform random ordered pair of distinct nodes.
pub fn random_pair(n: usize, rng: &mut impl Rng) -> (NodeId, NodeId) {
    assert!(n >= 2, "need at least two nodes for a request");
    let s = rng.gen_range(0..n);
    let mut t = rng.gen_range(0..n - 1);
    if t >= s {
        t += 1;
    }
    (NodeId::from(s), NodeId::from(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = TrafficModel::new(2.0, 5.0);
        let n = 20_000;
        let mean_gap: f64 = (0..n)
            .map(|_| model.next_interarrival(&mut rng))
            .sum::<f64>()
            / n as f64;
        let mean_hold: f64 = (0..n).map(|_| model.holding(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean_gap - 0.5).abs() < 0.02, "gap mean {mean_gap}");
        assert!((mean_hold - 5.0).abs() < 0.2, "hold mean {mean_hold}");
        assert_eq!(model.erlangs(), 10.0);
    }

    #[test]
    fn pairs_are_distinct_and_cover() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut seen = [false; 5 * 5];
        for _ in 0..5000 {
            let (s, t) = random_pair(5, &mut rng);
            assert_ne!(s, t);
            seen[s.index() * 5 + t.index()] = true;
        }
        // All 20 ordered pairs should occur.
        let count = seen.iter().filter(|&&b| b).count();
        assert_eq!(count, 20);
    }

    #[test]
    fn deterministic_holding_is_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = TrafficModel::new(1.0, 7.5).with_holding(HoldingDist::Deterministic);
        for _ in 0..10 {
            assert_eq!(m.holding(&mut rng), 7.5);
        }
    }

    #[test]
    fn pareto_mean_is_close_and_heavy_tailed() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let m = TrafficModel::new(1.0, 5.0).with_holding(HoldingDist::Pareto { alpha: 2.5 });
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| m.holding(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "pareto mean {mean}");
        // Minimum equals the scale; heavy tail shows extreme maxima.
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 40.0, "no heavy tail? max {max}");
    }

    #[test]
    #[should_panic(expected = "alpha > 1")]
    fn pareto_rejects_infinite_mean() {
        let _ = TrafficModel::new(1.0, 5.0).with_holding(HoldingDist::Pareto { alpha: 1.0 });
    }

    #[test]
    fn hotspot_bias_concentrates_destinations() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let m =
            TrafficModel::new(1.0, 5.0).with_pairs(PairSelection::Hotspot { hub: 3, bias: 0.7 });
        let mut to_hub = 0;
        let trials = 10_000;
        for _ in 0..trials {
            let (s, t) = m.draw_pair(10, &mut rng);
            assert_ne!(s, t);
            if t == NodeId(3) {
                to_hub += 1;
            }
        }
        let frac = to_hub as f64 / trials as f64;
        // 0.7 pinned + ~0.3/9 uniform mass.
        assert!((frac - 0.733).abs() < 0.03, "hub fraction {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<f64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            (0..10).map(|_| sample_exp(&mut rng, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            (0..10).map(|_| sample_exp(&mut rng, 1.0)).collect()
        };
        assert_eq!(a, b);
    }
}
