//! Conflict-aware scheduling of speculative batch windows.
//!
//! The windowed engine of [`crate::speculative`] speculates on the next
//! `K` demands in processing order and aborts the tail of the window at
//! the first conflict — at `K = 64` nearly every window dies that way
//! (88% aborts on the recorded bench). The scheduler in this module
//! attacks the problem *before* routing: it predicts each pending
//! demand's [`RouteFootprint`](wdm_core::disjoint::RouteFootprint) with a
//! [`FootprintOracle`] and greedily colors the lookahead into a
//! **link-disjoint conflict group** — the subset that gets speculated —
//! leaving the predicted-conflicting demands to be routed inline at their
//! exact serial position. Groups are scheduled one per round as
//! independent speculative sub-windows; see `speculative.rs` for how the
//! commit loop preserves bit-exact serial equivalence.
//!
//! ## The plan
//!
//! [`ConflictPartitioner::plan`] scans up to `2 × window` pending demands
//! in processing order, maintaining a running union `U` of the predicted
//! footprints of *every* scanned demand (selected or not):
//!
//! * the **head** demand is always selected — it commits unconditionally
//!   under the engine's rule 1, so every round makes progress;
//! * a later demand is selected iff its predicted footprint is disjoint
//!   from `U` and the group is not yet full. Checking against `U` rather
//!   than against the selected members only is deliberate: a *skipped*
//!   demand will be routed inline somewhere inside the round's range, so
//!   speculating a later demand into the region the skipped one is
//!   predicted to occupy would invite exactly the conflict the scheduler
//!   exists to avoid.
//!
//! The returned [`GroupPlan`] covers the contiguous range up to the last
//! selected member; the engine consumes the whole range each round
//! (members speculatively, the rest inline), so processing order is never
//! reordered — a precondition of serial equivalence.
//!
//! Predictions only shape the plan. A missed conflict costs the engine
//! one bounded retry at commit time; a spurious one costs a slot of
//! parallelism. Neither can change the outcome.

use wdm_core::predict::FootprintOracle;
use wdm_graph::{EdgeId, NodeId};

/// Default shard count for [`ScheduleMode::Sharded`] when the CLI
/// spelling carries no explicit `--shards`.
pub const DEFAULT_SHARDS: usize = 4;

/// How the speculative engine picks which pending demands to route
/// concurrently each round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ScheduleMode {
    /// PR 3 semantics: speculate on the next `K` demands in processing
    /// order; the first non-committable result aborts the rest of the
    /// window. Simple, but collapses under contention at large `K`.
    Windowed,
    /// Predict footprints, speculate only on a link-disjoint conflict
    /// group, route the predicted-conflicting remainder inline at its
    /// serial position, and recover mispredictions with a bounded
    /// per-demand retry instead of aborting the window.
    #[default]
    ConflictGroups,
    /// Statically partition the topology into `shards` regions
    /// (`wdm_core::partition`); per-shard workers route their intra-shard
    /// demands concurrently on long-lived mirrors with no inter-shard
    /// synchronisation, while cross-shard demands route inline at their
    /// exact serial slot (see `crate::sharded`).
    Sharded {
        /// Requested shard count (clamped to the node count at run time).
        shards: usize,
    },
}

impl ScheduleMode {
    /// Parses the CLI spelling (`windowed` / `conflict-groups` /
    /// `sharded`); `sharded` carries [`DEFAULT_SHARDS`] until the CLI's
    /// `--shards` overrides it.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "windowed" => Some(Self::Windowed),
            "conflict-groups" => Some(Self::ConflictGroups),
            "sharded" => Some(Self::Sharded {
                shards: DEFAULT_SHARDS,
            }),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Self::Windowed => "windowed",
            Self::ConflictGroups => "conflict-groups",
            Self::Sharded { .. } => "sharded",
        }
    }
}

/// One round's schedule: which of the pending demands to speculate on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlan {
    /// Offsets (from the window start, ascending) of the demands selected
    /// into the conflict group. Never empty; `members[0] == 0`.
    pub members: Vec<usize>,
    /// Contiguous span of processing order the round consumes:
    /// `members.last() + 1`. Offsets in `0..range` that are not members
    /// are routed inline at their serial position.
    pub range: usize,
}

/// Greedy link-disjoint group coloring over predicted footprints.
///
/// Holds a stamp array sized to the network's link count so each
/// [`plan`](Self::plan) call runs in `O(Σ |predicted footprint|)` without
/// clearing — one partitioner instance serves a whole batch.
#[derive(Debug, Clone)]
pub struct ConflictPartitioner {
    /// `stamp[link] == round` ⇔ the link is in the current scan's union.
    stamp: Vec<u32>,
    round: u32,
    scratch: Vec<EdgeId>,
}

impl ConflictPartitioner {
    /// A partitioner for a network with `link_count` directed links.
    pub fn new(link_count: usize) -> Self {
        Self {
            stamp: vec![0; link_count],
            round: 0,
            scratch: Vec::new(),
        }
    }

    /// Plans one round over `pending` — the `(src, dst)` pairs of the
    /// not-yet-committed demands in processing order — selecting at most
    /// `window` members from a lookahead of `2 × window` pairs.
    pub fn plan<O: FootprintOracle + ?Sized>(
        &mut self,
        oracle: &mut O,
        pending: &[(NodeId, NodeId)],
        window: usize,
    ) -> GroupPlan {
        debug_assert!(!pending.is_empty(), "plan() needs at least one demand");
        let window = window.max(1);
        let lookahead = pending.len().min(window * 2);
        self.round = self.round.wrapping_add(1);
        if self.round == 0 {
            // u32 stamp wraparound: old stamps could alias the new round.
            self.stamp.fill(0);
            self.round = 1;
        }
        let mut members = Vec::with_capacity(window.min(lookahead));
        for (k, &(s, t)) in pending[..lookahead].iter().enumerate() {
            self.scratch.clear();
            oracle.predict(s, t, &mut self.scratch);
            let disjoint = self
                .scratch
                .iter()
                .all(|e| self.stamp[e.index()] != self.round);
            if k == 0 || disjoint {
                members.push(k);
            }
            for &e in &self.scratch {
                self.stamp[e.index()] = self.round;
            }
            if members.len() >= window {
                break;
            }
        }
        let range = members.last().map_or(0, |&m| m + 1);
        GroupPlan { members, range }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::predict::{AllConflictOracle, NoConflictOracle};

    /// An oracle scripted with one footprint per pending position.
    struct Scripted(Vec<Vec<EdgeId>>);
    impl Scripted {
        fn advance(&mut self) -> Vec<EdgeId> {
            self.0.remove(0)
        }
    }
    impl FootprintOracle for Scripted {
        fn predict(&mut self, _s: NodeId, _t: NodeId, out: &mut Vec<EdgeId>) {
            out.extend(self.advance());
        }
    }

    fn pairs(n: usize) -> Vec<(NodeId, NodeId)> {
        (0..n as u32).map(|i| (NodeId(i), NodeId(i + 1))).collect()
    }

    #[test]
    fn all_disjoint_fills_the_window() {
        let mut p = ConflictPartitioner::new(64);
        let mut oracle = NoConflictOracle;
        let plan = p.plan(&mut oracle, &pairs(16), 8);
        assert_eq!(plan.members, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(plan.range, 8);
    }

    #[test]
    fn all_conflicting_degenerates_to_the_head() {
        let mut p = ConflictPartitioner::new(4);
        let mut oracle = AllConflictOracle { links: 4 };
        let plan = p.plan(&mut oracle, &pairs(16), 8);
        assert_eq!(plan.members, vec![0]);
        assert_eq!(plan.range, 1);
    }

    #[test]
    fn single_demand_is_a_singleton_group() {
        let mut p = ConflictPartitioner::new(4);
        let mut oracle = NoConflictOracle;
        let plan = p.plan(&mut oracle, &pairs(1), 8);
        assert_eq!(plan.members, vec![0]);
        assert_eq!(plan.range, 1);
    }

    #[test]
    fn skipped_demands_block_their_region_for_later_members() {
        // Position 1 conflicts with the head on link 0 and also covers
        // link 5; position 2 touches only link 5. Selecting 2 would
        // speculate into the region the skipped demand 1 will occupy
        // inline, so it must be skipped too; position 3 is clean.
        let mut p = ConflictPartitioner::new(8);
        let mut oracle = Scripted(vec![
            vec![EdgeId(0), EdgeId(1)],
            vec![EdgeId(0), EdgeId(5)],
            vec![EdgeId(5)],
            vec![EdgeId(7)],
        ]);
        let plan = p.plan(&mut oracle, &pairs(4), 8);
        assert_eq!(plan.members, vec![0, 3]);
        assert_eq!(plan.range, 4);
    }

    #[test]
    fn lookahead_and_window_are_both_bounded() {
        let mut p = ConflictPartitioner::new(64);
        let mut oracle = NoConflictOracle;
        // Window caps the group size...
        let plan = p.plan(&mut oracle, &pairs(64), 4);
        assert_eq!(plan.members.len(), 4);
        // ...and with everything conflicting after the head, the scan
        // stops at the 2×window lookahead.
        let mut all = AllConflictOracle { links: 64 };
        let plan = p.plan(&mut all, &pairs(64), 4);
        assert_eq!(
            plan,
            GroupPlan {
                members: vec![0],
                range: 1
            }
        );
    }

    #[test]
    fn reuse_across_rounds_resets_the_union() {
        let mut p = ConflictPartitioner::new(4);
        let mut oracle = Scripted(vec![
            vec![EdgeId(0)],
            // Next round: same link must not be considered occupied.
            vec![EdgeId(0)],
            vec![EdgeId(1)],
        ]);
        let plan = p.plan(&mut oracle, &pairs(1), 8);
        assert_eq!(plan.members, vec![0]);
        let plan = p.plan(&mut oracle, &pairs(2), 8);
        assert_eq!(plan.members, vec![0, 1]);
    }

    #[test]
    fn mode_parse_round_trips() {
        for mode in [
            ScheduleMode::Windowed,
            ScheduleMode::ConflictGroups,
            ScheduleMode::Sharded {
                shards: DEFAULT_SHARDS,
            },
        ] {
            assert_eq!(ScheduleMode::parse(mode.name()), Some(mode));
        }
        // A non-default shard count keeps the spelling.
        assert_eq!(ScheduleMode::Sharded { shards: 7 }.name(), "sharded");
        assert_eq!(ScheduleMode::parse("bogus"), None);
        assert_eq!(ScheduleMode::default(), ScheduleMode::ConflictGroups);
    }
}
