//! Auxiliary-graph construction cost: `G'`, `G_c`, `G_rc` on NSFNET and a
//! dense random WAN (the O(m + nd) term of Theorem 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wdm_bench::{random_connected_instance, rng};
use wdm_core::aux_graph::{AuxGraph, AuxSpec};
use wdm_core::network::{NetworkBuilder, ResidualState};
use wdm_graph::NodeId;

fn bench_build(c: &mut Criterion) {
    let nets = [
        ("nsfnet_w16", NetworkBuilder::nsfnet(16).build()),
        ("random_n100_d8_w16", {
            let mut r = rng(5);
            random_connected_instance(&mut r, 100, 8, 16)
        }),
    ];
    let mut group = c.benchmark_group("aux_graph_build");
    for (name, net) in &nets {
        let state = ResidualState::fresh(net);
        let t = NodeId((net.node_count() - 1) as u32);
        for (spec_name, spec) in [
            ("g_prime", AuxSpec::g_prime()),
            ("g_c", AuxSpec::g_c(std::f64::consts::E, 0.9)),
            ("g_rc", AuxSpec::g_rc(0.9)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(spec_name, name),
                &(net, spec),
                |b, (net, spec)| {
                    b.iter(|| {
                        black_box(
                            AuxGraph::build(net, &state, NodeId(0), t, *spec)
                                .graph
                                .edge_count(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
