//! The Liang–Shen optimal-semilightpath search (the `nW² + nW log(nW)`
//! term of Theorems 1 and 3) and the fixed-path wavelength DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wdm_bench::{random_connected_instance, rng};
use wdm_core::network::ResidualState;
use wdm_core::optimal_slp::{assign_wavelengths_on_path, optimal_semilightpath};
use wdm_graph::NodeId;

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_slp");
    group.sample_size(30);
    for &w in &[4usize, 16, 64] {
        let mut r = rng(w as u64);
        let net = random_connected_instance(&mut r, 100, 6, w);
        let state = ResidualState::fresh(&net);
        group.bench_with_input(BenchmarkId::new("search_w", w), &net, |b, net| {
            b.iter(|| {
                black_box(optimal_semilightpath(net, &state, NodeId(0), NodeId(99)).map(|p| p.cost))
            })
        });
        // Fixed-path DP along a precomputed route.
        let slp = optimal_semilightpath(&net, &state, NodeId(0), NodeId(99)).expect("reachable");
        let edges: Vec<_> = slp.edges().collect();
        group.bench_with_input(BenchmarkId::new("path_dp_w", w), &net, |b, net| {
            b.iter(|| {
                black_box(
                    assign_wavelengths_on_path(net, &state, NodeId(0), &edges).map(|p| p.cost),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
