//! Disjoint-pair engines on plain graphs: Suurballe vs the two-step greedy
//! vs min-cost flow (all compute or approximate the same object).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use wdm_graph::mincostflow::min_cost_disjoint_paths;
use wdm_graph::suurballe::{edge_disjoint_pair, node_disjoint_pair, two_step_pair};
use wdm_graph::{topology, NodeId};

fn bench_engines(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let graphs = [
        ("nsfnet", topology::nsfnet()),
        ("arpanet", topology::arpanet_like()),
        (
            "waxman200",
            topology::waxman(200, 0.9, 0.2, 1000.0, &mut rng),
        ),
    ];
    let mut group = c.benchmark_group("disjoint_pair");
    for (name, g) in &graphs {
        let t = NodeId((g.node_count() - 1) as u32);
        group.bench_with_input(BenchmarkId::new("suurballe", name), g, |b, g| {
            b.iter(|| black_box(edge_disjoint_pair(g, NodeId(0), t, |e| g.weight(e)).is_some()))
        });
        group.bench_with_input(BenchmarkId::new("two_step", name), g, |b, g| {
            b.iter(|| black_box(two_step_pair(g, NodeId(0), t, |e| g.weight(e)).is_some()))
        });
        group.bench_with_input(BenchmarkId::new("mincostflow", name), g, |b, g| {
            b.iter(|| {
                black_box(min_cost_disjoint_paths(g, NodeId(0), t, 2, |e| g.weight(e)).is_some())
            })
        });
        group.bench_with_input(BenchmarkId::new("node_disjoint", name), g, |b, g| {
            b.iter(|| black_box(node_disjoint_pair(g, NodeId(0), t, |e| g.weight(e)).is_some()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
