//! Speculative batch provisioning vs the serial loop (the per-window
//! regression guard behind `exp_parallel_batch`), in all three schedule
//! modes: the PR 3 windowed abort-the-rest engine, the conflict-aware
//! group scheduler, and the shard-parallel engine (single-threaded here;
//! `exp_parallel_batch` owns the multi-thread wall-clock grid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wdm_bench::{random_connected_instance, rng};
use wdm_core::journal::NoopSink;
use wdm_core::network::ResidualState;
use wdm_sim::batch::{provision_batch, BatchOrder, Demand};
use wdm_sim::policy::Policy;
use wdm_sim::schedule::ScheduleMode;
use wdm_sim::speculative::provision_batch_speculative_scheduled;
use wdm_telemetry::{NoopRecorder, NoopTracer};

fn bench_windows(c: &mut Criterion) {
    let mut r = rng(0xBA7C4);
    let net = random_connected_instance(&mut r, 60, 4, 8);
    let state = ResidualState::fresh(&net);
    let demands: Vec<Demand> = {
        use rand::Rng;
        let mut rr = rng(0xBA7C5);
        (0..200)
            .map(|_| loop {
                let s = rr.gen_range(0..60u32);
                let t = rr.gen_range(0..60u32);
                if s != t {
                    return Demand::new(s, t);
                }
            })
            .collect()
    };
    let policy = Policy::CostOnly;
    let order = BatchOrder::AsGiven;

    let mut group = c.benchmark_group("parallel_batch");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(provision_batch(&net, &state, &demands, policy, order)))
    });
    for (label, schedule) in [
        ("conflict-groups", ScheduleMode::ConflictGroups),
        ("windowed", ScheduleMode::Windowed),
        ("sharded", ScheduleMode::Sharded { shards: 4 }),
    ] {
        for window in [1usize, 8, 64] {
            group.bench_with_input(BenchmarkId::new(label, window), &window, |b, &window| {
                b.iter(|| {
                    black_box(provision_batch_speculative_scheduled(
                        &net,
                        &state,
                        &demands,
                        policy,
                        order,
                        window,
                        schedule,
                        1,
                        NoopRecorder,
                        NoopSink,
                        &NoopTracer,
                    ))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_windows);
criterion_main!(benches);
