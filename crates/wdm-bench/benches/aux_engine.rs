//! Routing hot path, scratch vs incremental: per request, the old pipeline
//! rebuilds the auxiliary graph (`AuxGraph::build`) and runs the allocating
//! Suurballe; the new one syncs a persistent [`AuxEngine`] (dirty links
//! only) and searches in a reusable [`SearchArena`]. Between requests a
//! small churn script flips a couple of channels, mimicking the arrival /
//! departure mix a simulator generates — the regime the incremental engine
//! is built for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use std::hint::black_box;
use wdm_bench::{dyadic_connected_instance, random_connected_instance, rng};
use wdm_core::aux_engine::{AuxEngine, RouterCtx};
use wdm_core::aux_graph::{AuxGraph, AuxSpec};
use wdm_core::disjoint::robust_route_ctx;
use wdm_core::network::{ResidualState, WdmNetwork};
use wdm_core::wavelength::Wavelength;
use wdm_graph::suurballe::edge_disjoint_pair;
use wdm_graph::{EdgeId, NodeId, SearchArena};
use wdm_telemetry::{NoopRecorder, SpanBuffer, TelemetrySink, Tracer};

/// Deterministic channel churn: each step toggles the next scripted channel
/// (occupy if free, release if held), keeping the load stationary around
/// half the script's channels.
struct Churn {
    ops: Vec<(EdgeId, Wavelength)>,
    i: usize,
}

impl Churn {
    fn new(net: &WdmNetwork, count: usize, seed: u64) -> Self {
        let mut r = rng(seed);
        let ops = (0..count)
            .map(|_| {
                let e = EdgeId::from(r.gen_range(0..net.link_count()));
                let lambda = net.lambda(e);
                let nth = r.gen_range(0..lambda.count());
                (e, lambda.iter().nth(nth).expect("non-empty"))
            })
            .collect();
        Self { ops, i: 0 }
    }

    fn step(&mut self, net: &WdmNetwork, st: &mut ResidualState) {
        for _ in 0..2 {
            let (e, l) = self.ops[self.i % self.ops.len()];
            self.i += 1;
            if st.used(e).contains(l) {
                let _ = st.release(e, l);
            } else {
                let _ = st.occupy(net, e, l);
            }
        }
    }
}

fn requests(net: &WdmNetwork, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut r = rng(seed);
    (0..count)
        .map(|_| loop {
            let s = r.gen_range(0..net.node_count()) as u32;
            let t = r.gen_range(0..net.node_count()) as u32;
            if s != t {
                return (NodeId(s), NodeId(t));
            }
        })
        .collect()
}

fn bench_hot_path(c: &mut Criterion) {
    // m ≈ 200 directed links, W = 8: the headline size from the issue.
    let net = {
        let mut r = rng(11);
        random_connected_instance(&mut r, 100, 4, 8)
    };
    let reqs = requests(&net, 64, 12);
    let mut group = c.benchmark_group("routing_hot_path");

    group.bench_with_input(BenchmarkId::new("scratch", "n100_d4_w8"), &net, |b, net| {
        let mut st = ResidualState::fresh(net);
        let mut churn = Churn::new(net, 256, 13);
        let mut k = 0usize;
        b.iter(|| {
            churn.step(net, &mut st);
            let (s, t) = reqs[k % reqs.len()];
            k += 1;
            let aux = AuxGraph::build(net, &st, s, t, AuxSpec::g_prime());
            let pair = edge_disjoint_pair(&aux.graph, aux.source, aux.sink, |e| aux.weight(e));
            black_box(pair.map(|p| p.total_cost))
        })
    });

    group.bench_with_input(BenchmarkId::new("engine", "n100_d4_w8"), &net, |b, net| {
        let mut st = ResidualState::fresh(net);
        let mut churn = Churn::new(net, 256, 13);
        let mut eng = AuxEngine::new(net, AuxSpec::g_prime());
        let mut arena = SearchArena::new();
        let mut k = 0usize;
        b.iter(|| {
            churn.step(net, &mut st);
            let (s, t) = reqs[k % reqs.len()];
            k += 1;
            eng.sync(net, &st, s, t);
            let eng = &eng;
            let pair = arena.edge_disjoint_pair(
                eng.graph(),
                eng.source(),
                eng.sink(),
                |e| eng.weight(e),
                |e| eng.enabled(e),
            );
            black_box(pair.map(|p| p.total_cost))
        })
    });

    // The CSR tier: same engine, searched through its flat mirror with the
    // integer bucket queue and warm Johnson potentials. Runs on a dyadic
    // (quarter-integer cost, free conversion) instance of the same shape so
    // the integer certificate holds on every request.
    group.bench_function(BenchmarkId::new("engine_csr", "n100_d4_w8"), |b| {
        let net = {
            let mut r = rng(11);
            dyadic_connected_instance(&mut r, 100, 4, 8)
        };
        let reqs = requests(&net, 64, 12);
        let mut st = ResidualState::fresh(&net);
        let mut churn = Churn::new(&net, 256, 13);
        let mut eng = AuxEngine::new(&net, AuxSpec::g_prime());
        eng.set_warm_potentials(true);
        let mut arena = SearchArena::new();
        let mut k = 0usize;
        b.iter(|| {
            churn.step(&net, &mut st);
            let (s, t) = reqs[k % reqs.len()];
            k += 1;
            eng.sync(&net, &st, s, t);
            eng.warm_prepare(&net);
            let (aux_s, aux_t) = (eng.source(), eng.sink());
            let (view, int, pot) = eng.flat_parts();
            let pair = match int {
                Some(iw) => {
                    arena.edge_disjoint_pair_flat_int(&view, &iw, Some(pot), aux_s, aux_t, || {})
                }
                None => arena.edge_disjoint_pair_flat(&view, aux_s, aux_t, || {}),
            };
            black_box(pair.map(|p| p.total_cost))
        })
    });

    // A/B overhead check for the telemetry layer: the full §3.3 pipeline
    // through a RouterCtx, once with the NoopRecorder default (must price
    // in at the uninstrumented hot path — every recording site is gated on
    // an `#[inline(always)] false`) and once with a live TelemetrySink.
    group.bench_with_input(
        BenchmarkId::new("ctx_noop", "n100_d4_w8"),
        &net,
        |b, net| {
            let mut st = ResidualState::fresh(net);
            let mut churn = Churn::new(net, 256, 13);
            let mut ctx = RouterCtx::new();
            let mut k = 0usize;
            b.iter(|| {
                churn.step(net, &mut st);
                let (s, t) = reqs[k % reqs.len()];
                k += 1;
                let route = robust_route_ctx(&mut ctx, net, &st, s, t);
                black_box(route.ok().map(|(r, _)| r.total_cost()))
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("ctx_telemetry", "n100_d4_w8"),
        &net,
        |b, net| {
            let sink = TelemetrySink::new();
            let mut st = ResidualState::fresh(net);
            let mut churn = Churn::new(net, 256, 13);
            let mut ctx = RouterCtx::with_recorder(&sink);
            let mut k = 0usize;
            b.iter(|| {
                churn.step(net, &mut st);
                let (s, t) = reqs[k % reqs.len()];
                k += 1;
                ctx.begin_request();
                let route = robust_route_ctx(&mut ctx, net, &st, s, t);
                black_box(route.ok().map(|(r, _)| r.total_cost()))
            })
        },
    );

    // And once with a live span buffer: two clock reads and a Vec push per
    // pipeline phase. Drained periodically so the buffer stays cache-sized
    // instead of growing across Criterion's sampling.
    group.bench_with_input(
        BenchmarkId::new("ctx_span", "n100_d4_w8"),
        &net,
        |b, net| {
            let buf = SpanBuffer::new();
            let mut st = ResidualState::fresh(net);
            let mut churn = Churn::new(net, 256, 13);
            let mut ctx = RouterCtx::with_recorder_and_tracer(NoopRecorder, &buf);
            let mut k = 0usize;
            let mut until_drain = 1024u32;
            b.iter(|| {
                churn.step(net, &mut st);
                let (s, t) = reqs[k % reqs.len()];
                k += 1;
                ctx.begin_request();
                ctx.tracer().begin_request();
                let route = robust_route_ctx(&mut ctx, net, &st, s, t);
                until_drain -= 1;
                if until_drain == 0 {
                    until_drain = 1024;
                    black_box(buf.take_records().len());
                }
                black_box(route.ok().map(|(r, _)| r.total_cost()))
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
