//! LP / ILP solver micro-benchmarks: dense simplex pivots and the paper's
//! Eqs. 3–21 integer program on a small WDM instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wdm_bench::{random_instance, rng, InstanceParams};
use wdm_core::exact::ilp_best_pair;
use wdm_graph::NodeId;
use wdm_ilp::{solve_lp_standard, Cmp, IlpOptions, LinExpr, Model};

/// Random dense feasible LP: min cᵀx, Ax = b with x = 1 feasible.
fn random_lp(m: usize, n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 1000) as f64 / 100.0
    };
    let a: Vec<Vec<f64>> = (0..m).map(|_| (0..n).map(|_| next()).collect()).collect();
    let b: Vec<f64> = a.iter().map(|row| row.iter().sum()).collect(); // x = 1 feasible
    let c: Vec<f64> = (0..n).map(|_| next()).collect();
    (a, b, c)
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_lp");
    for &(m, n) in &[(10usize, 20usize), (25, 50), (50, 100)] {
        let (a, b, cc) = random_lp(m, n, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &(a, b, cc),
            |bench, (a, b, cc)| bench.iter(|| black_box(solve_lp_standard(a, b, cc))),
        );
    }
    group.finish();
}

fn bench_knapsack_ilp(c: &mut Criterion) {
    c.bench_function("ilp_knapsack_18", |bench| {
        bench.iter(|| {
            let mut m = Model::minimize();
            let vars: Vec<_> = (0..18).map(|i| m.binary(format!("x{i}"))).collect();
            let mut w = LinExpr::new();
            let mut v = LinExpr::new();
            for (i, &x) in vars.iter().enumerate() {
                w.add_term(x, 1.0 + (i % 5) as f64);
                v.add_term(x, -(2.0 + (i % 7) as f64));
            }
            m.constrain(w, Cmp::Le, 20.0);
            m.set_objective(v);
            black_box(wdm_ilp::solve_ilp(&m, &IlpOptions::default()).obj)
        })
    });
}

fn bench_paper_ilp(c: &mut Criterion) {
    let mut r = rng(4242);
    let (net, state) = random_instance(
        &mut r,
        InstanceParams {
            n: 5,
            w: 2,
            link_p: 0.5,
            ..Default::default()
        },
    );
    let mut group = c.benchmark_group("paper_ilp");
    group.sample_size(10);
    group.bench_function("eqs_3_21_n5_w2", |b| {
        b.iter(|| {
            black_box(
                ilp_best_pair(&net, &state, NodeId(0), NodeId(4), &IlpOptions::default())
                    .map(|(r, _)| r.map(|x| x.total_cost())),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simplex, bench_knapsack_ilp, bench_paper_ilp);
criterion_main!(benches);
