//! Simulator throughput per provisioning policy (events/second drive how
//! long the C1–C3 sweeps take; also a regression guard on the policies'
//! per-request computational cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wdm_core::network::NetworkBuilder;
use wdm_sim::policy::Policy;
use wdm_sim::sim::{run_sim, SimConfig};
use wdm_sim::traffic::TrafficModel;

fn bench_policies(c: &mut Criterion) {
    let net = NetworkBuilder::nsfnet(16).build();
    let mut group = c.benchmark_group("sim_policy");
    group.sample_size(10);
    for policy in [
        Policy::CostOnly,
        Policy::LoadOnly {
            a: std::f64::consts::E,
        },
        Policy::Joint {
            a: std::f64::consts::E,
        },
        Policy::TwoStep,
        Policy::Unrefined,
        Policy::PrimaryOnly,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let cfg = SimConfig {
                        policy,
                        traffic: TrafficModel::new(4.0, 10.0),
                        duration: 100.0,
                        failure_rate: 0.1,
                        mean_repair: 10.0,
                        reconfig_threshold: None,
                        seed: 1,
                        switchover_time: 0.001,
                        setup_time_per_hop: 0.05,
                    };
                    black_box(run_sim(&net, cfg).admitted)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
