//! Heap-engine comparison on Dijkstra workloads (the Theorem 1 constant
//! factor: the paper cites Fibonacci heaps; we measure the practical
//! candidates head-to-head).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use wdm_graph::dijkstra::dijkstra_generic;
use wdm_graph::{topology, NodeId};
use wdm_heap::{DaryHeap, MinQueue, PairingHeap};

fn bench_dijkstra_engines(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let graphs = [
        ("grid30x30", topology::grid(30, 30, true, 1.0)),
        (
            "waxman300",
            topology::waxman(300, 0.9, 0.2, 1000.0, &mut rng),
        ),
    ];
    let mut group = c.benchmark_group("dijkstra_engine");
    for (name, g) in &graphs {
        group.bench_with_input(BenchmarkId::new("dary4", name), g, |b, g| {
            b.iter(|| {
                dijkstra_generic::<_, _, DaryHeap<f64, 4>>(
                    g,
                    NodeId(0),
                    None,
                    |e| g.weight(e),
                    |_| true,
                )
                .dist[g.node_count() - 1]
            })
        });
        group.bench_with_input(BenchmarkId::new("dary2", name), g, |b, g| {
            b.iter(|| {
                dijkstra_generic::<_, _, DaryHeap<f64, 2>>(
                    g,
                    NodeId(0),
                    None,
                    |e| g.weight(e),
                    |_| true,
                )
                .dist[g.node_count() - 1]
            })
        });
        group.bench_with_input(BenchmarkId::new("dary8", name), g, |b, g| {
            b.iter(|| {
                dijkstra_generic::<_, _, DaryHeap<f64, 8>>(
                    g,
                    NodeId(0),
                    None,
                    |e| g.weight(e),
                    |_| true,
                )
                .dist[g.node_count() - 1]
            })
        });
        group.bench_with_input(BenchmarkId::new("pairing", name), g, |b, g| {
            b.iter(|| {
                dijkstra_generic::<_, _, PairingHeap<f64>>(
                    g,
                    NodeId(0),
                    None,
                    |e| g.weight(e),
                    |_| true,
                )
                .dist[g.node_count() - 1]
            })
        });
    }
    group.finish();
}

fn bench_raw_ops(c: &mut Criterion) {
    let n = 10_000usize;
    let mut group = c.benchmark_group("heap_push_pop");
    group.bench_function("dary4", |b| {
        b.iter(|| {
            let mut h: DaryHeap<f64, 4> = DaryHeap::with_capacity(n);
            for i in 0..n {
                h.insert(i, ((i * 2654435761) % 1000) as f64);
            }
            let mut sum = 0.0;
            while let Some((_, k)) = h.pop_min() {
                sum += k;
            }
            black_box(sum)
        })
    });
    group.bench_function("pairing", |b| {
        b.iter(|| {
            let mut h: PairingHeap<f64> = PairingHeap::with_capacity(n);
            for i in 0..n {
                h.insert(i, ((i * 2654435761) % 1000) as f64);
            }
            let mut sum = 0.0;
            while let Some((_, k)) = h.pop_min() {
                sum += k;
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_dial_vs_heap(c: &mut Criterion) {
    // Integer costs: Dial's bucket queue vs the d-ary heap.
    let g = topology::grid(40, 40, true, 1.0);
    let int_cost = |e: wdm_graph::EdgeId| (e.index() % 16 + 1) as u64;
    let mut group = c.benchmark_group("integer_dijkstra");
    group.bench_function("dial_bucket", |b| {
        b.iter(|| {
            let (dist, _) = wdm_graph::dijkstra::dijkstra_bucket(&g, NodeId(0), 16, int_cost);
            black_box(dist[g.node_count() - 1])
        })
    });
    group.bench_function("dary4_float", |b| {
        b.iter(|| {
            let t = dijkstra_generic::<_, _, DaryHeap<f64, 4>>(
                &g,
                NodeId(0),
                None,
                |e| int_cost(e) as f64,
                |_| true,
            );
            black_box(t.dist[g.node_count() - 1])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dijkstra_engines,
    bench_raw_ops,
    bench_dial_vs_heap
);
criterion_main!(benches);
