//! Forking the residual state: O(m) full clones vs O(Δ) transactional
//! undo logs, across network sizes m and touched-link counts Δ. The Txn
//! numbers should be flat in m and linear in Δ; the clone numbers grow
//! with m regardless of how little the fork actually touches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wdm_bench::{random_connected_instance, rng};
use wdm_core::journal::Txn;
use wdm_core::network::ResidualState;
use wdm_core::semilightpath::Hop;
use wdm_core::wavelength::Wavelength;
use wdm_graph::EdgeId;

fn bench_state_fork(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_fork");
    for &n in &[50usize, 200, 800] {
        let mut r = rng(n as u64 * 7 + 1);
        let net = random_connected_instance(&mut r, n, 6, 16);
        let m = net.link_count();
        let state = ResidualState::fresh(&net);

        group.bench_with_input(BenchmarkId::new("clone", m), &state, |b, st| {
            b.iter(|| black_box(st.clone()))
        });

        for &delta in &[4usize, 16, 64] {
            let hops: Vec<Hop> = (0..delta.min(m))
                .map(|i| Hop {
                    edge: EdgeId::from(i),
                    wavelength: Wavelength(0),
                })
                .collect();
            let mut local = state.clone();
            group.bench_with_input(
                BenchmarkId::new(format!("txn_delta{delta}"), m),
                &net,
                |b, net| {
                    b.iter(|| {
                        let mut txn = Txn::begin(&mut local);
                        txn.occupy_hops(net, &hops).expect("fresh channels");
                        black_box(txn.touched());
                        txn.rollback();
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_state_fork);
criterion_main!(benches);
