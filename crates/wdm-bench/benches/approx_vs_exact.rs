//! T2 timing: the §3.3 approximation vs the exact solvers on instances
//! where both are feasible — the price of exactness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wdm_bench::{random_instance, rng, InstanceParams};
use wdm_core::disjoint::RobustRouteFinder;
use wdm_core::exact::{exhaustive_best_pair, ilp_best_pair};
use wdm_graph::NodeId;
use wdm_ilp::IlpOptions;

fn bench_approx_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_vs_exact");
    group.sample_size(10);
    for &n in &[5usize, 7, 9] {
        let mut r = rng(n as u64 * 31);
        let (net, state) = random_instance(
            &mut r,
            InstanceParams {
                n,
                w: 3,
                link_p: 0.45,
                ..Default::default()
            },
        );
        let t = NodeId((n - 1) as u32);
        group.bench_with_input(BenchmarkId::new("approx_3_3", n), &net, |b, net| {
            let mut finder = RobustRouteFinder::new(net);
            b.iter(|| black_box(finder.find(&state, NodeId(0), t).is_ok()))
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &net, |b, net| {
            b.iter(|| {
                black_box(
                    exhaustive_best_pair(net, &state, NodeId(0), t, 1_000_000)
                        .0
                        .is_some(),
                )
            })
        });
        if n <= 5 {
            group.bench_with_input(BenchmarkId::new("ilp", n), &net, |b, net| {
                b.iter(|| {
                    black_box(
                        ilp_best_pair(net, &state, NodeId(0), t, &IlpOptions::default())
                            .map(|(r, _)| r.is_some()),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_approx_vs_exact);
criterion_main!(benches);
