//! T1 bench: the §3.3 approximation's running time vs n and W
//! (Criterion counterpart of `exp_scaling`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wdm_bench::{random_connected_instance, rng};
use wdm_core::disjoint::RobustRouteFinder;
use wdm_core::network::ResidualState;
use wdm_graph::NodeId;

fn bench_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_pair_vs_n");
    group.sample_size(20);
    for &n in &[50usize, 100, 200] {
        let mut r = rng(n as u64);
        let net = random_connected_instance(&mut r, n, 6, 8);
        let state = ResidualState::fresh(&net);
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            let mut finder = RobustRouteFinder::new(net);
            b.iter(|| {
                black_box(
                    finder
                        .find(&state, NodeId(0), NodeId((n - 1) as u32))
                        .is_ok(),
                )
            })
        });
    }
    group.finish();
}

fn bench_vs_w(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_pair_vs_w");
    group.sample_size(20);
    for &w in &[4usize, 16, 64] {
        let mut r = rng(w as u64 + 99);
        let net = random_connected_instance(&mut r, 100, 6, w);
        let state = ResidualState::fresh(&net);
        group.bench_with_input(BenchmarkId::from_parameter(w), &net, |b, net| {
            let mut finder = RobustRouteFinder::new(net);
            b.iter(|| black_box(finder.find(&state, NodeId(0), NodeId(99)).is_ok()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_n, bench_vs_w);
criterion_main!(benches);
