//! Experiment — span-tracing A/B overhead on the routing hot path.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_span_overhead            # full
//! cargo run --release -p wdm-bench --bin exp_span_overhead -- --quick # smoke
//! ```
//!
//! Routes the same churn-interleaved request stream three ways and reports
//! ns/request:
//!
//! * **oneshot**  — a fresh [`RobustRouteFinder`] per request (cold
//!   skeleton every time, the pre-engine baseline);
//! * **ctx_noop** — a persistent [`RouterCtx`] with the [`NoopTracer`]
//!   default: every span site is gated on an `#[inline(always)] false`,
//!   so this must price in at the uninstrumented hot path;
//! * **ctx_span** — the same context with a live [`SpanBuffer`]: two
//!   clock reads and a `Vec` push per phase.
//!
//! The acceptance criterion is the `ctx_noop` leg: `gate_speedup`
//! (oneshot / ctx_noop) must not regress when span instrumentation is
//! compiled in disabled, and `span_overhead_pct` documents the live cost.
//! Writes the machine-readable results to `BENCH_span_overhead.json` in
//! the working directory (the committed artifact lives at the repo root).
//!
//! [`NoopTracer`]: wdm_telemetry::NoopTracer

use rand::Rng;
use wdm_bench::{random_connected_instance, rng, timed, Table};
use wdm_core::aux_engine::RouterCtx;
use wdm_core::disjoint::{robust_route_ctx, RobustRouteFinder};
use wdm_core::network::{ResidualState, WdmNetwork};
use wdm_core::wavelength::Wavelength;
use wdm_graph::{EdgeId, NodeId};
use wdm_telemetry::{NoopRecorder, SpanBuffer, Tracer};

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct SizeResult {
    name: String,
    nodes: usize,
    links: usize,
    wavelengths: usize,
    requests: usize,
    oneshot_ns_per_req: f64,
    ctx_noop_ns_per_req: f64,
    ctx_span_ns_per_req: f64,
    /// oneshot / ctx_noop — the reuse win the NoopTracer must preserve.
    gate_speedup: f64,
    /// (ctx_span − ctx_noop) / ctx_noop, in percent.
    span_overhead_pct: f64,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    bench: String,
    unit: String,
    sizes: Vec<SizeResult>,
}

/// Deterministic stationary churn (same scheme as `exp_aux_engine`).
struct Churn {
    ops: Vec<(EdgeId, Wavelength)>,
    i: usize,
}

impl Churn {
    fn new(net: &WdmNetwork, count: usize, seed: u64) -> Self {
        let mut r = rng(seed);
        let ops = (0..count)
            .map(|_| {
                let e = EdgeId::from(r.gen_range(0..net.link_count()));
                let lambda = net.lambda(e);
                let nth = r.gen_range(0..lambda.count());
                (e, lambda.iter().nth(nth).expect("non-empty"))
            })
            .collect();
        Self { ops, i: 0 }
    }

    fn step(&mut self, net: &WdmNetwork, st: &mut ResidualState) {
        for _ in 0..2 {
            let (e, l) = self.ops[self.i % self.ops.len()];
            self.i += 1;
            if st.used(e).contains(l) {
                let _ = st.release(e, l);
            } else {
                let _ = st.occupy(net, e, l);
            }
        }
    }
}

fn requests(net: &WdmNetwork, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut r = rng(seed);
    (0..count)
        .map(|_| loop {
            let s = r.gen_range(0..net.node_count()) as u32;
            let t = r.gen_range(0..net.node_count()) as u32;
            if s != t {
                return (NodeId(s), NodeId(t));
            }
        })
        .collect()
}

fn oneshot_pass(net: &WdmNetwork, stream: &[(NodeId, NodeId)], seed: u64) -> (usize, f64) {
    let mut st = ResidualState::fresh(net);
    let mut churn = Churn::new(net, 256, seed ^ 2);
    let mut found = 0usize;
    let (_, secs) = timed(|| {
        for &(s, t) in stream {
            churn.step(net, &mut st);
            if RobustRouteFinder::new(net).find(&st, s, t).is_ok() {
                found += 1;
            }
        }
    });
    (found, secs)
}

fn ctx_noop_pass(net: &WdmNetwork, stream: &[(NodeId, NodeId)], seed: u64) -> (usize, f64) {
    let mut st = ResidualState::fresh(net);
    let mut churn = Churn::new(net, 256, seed ^ 2);
    let mut ctx = RouterCtx::new();
    let mut found = 0usize;
    let (_, secs) = timed(|| {
        for &(s, t) in stream {
            churn.step(net, &mut st);
            if robust_route_ctx(&mut ctx, net, &st, s, t).is_ok() {
                found += 1;
            }
        }
    });
    (found, secs)
}

fn ctx_span_pass(net: &WdmNetwork, stream: &[(NodeId, NodeId)], seed: u64) -> (usize, f64) {
    let mut st = ResidualState::fresh(net);
    let mut churn = Churn::new(net, 256, seed ^ 2);
    let buf = SpanBuffer::new();
    let mut ctx = RouterCtx::with_recorder_and_tracer(NoopRecorder, &buf);
    let mut found = 0usize;
    let (_, secs) = timed(|| {
        for &(s, t) in stream {
            churn.step(net, &mut st);
            ctx.begin_request();
            ctx.tracer().begin_request();
            if robust_route_ctx(&mut ctx, net, &st, s, t).is_ok() {
                found += 1;
            }
        }
    });
    assert!(
        !buf.records().is_empty(),
        "the live buffer must actually have recorded spans"
    );
    (found, secs)
}

fn measure(n: usize, d: usize, w: usize, reqs: usize, passes: usize, seed: u64) -> SizeResult {
    let mut r = rng(seed);
    let net = random_connected_instance(&mut r, n, d, w);
    let stream = requests(&net, reqs, seed ^ 1);

    // Alternate the three pipelines and keep each one's fastest pass (the
    // run least disturbed by other tenants — same discipline as
    // `exp_aux_engine`, so the ratios are stable enough for CI to gate on).
    let mut oneshot_secs = f64::INFINITY;
    let mut noop_secs = f64::INFINITY;
    let mut span_secs = f64::INFINITY;
    for _ in 0..passes {
        let (found_oneshot, os) = oneshot_pass(&net, &stream, seed);
        let (found_noop, ns) = ctx_noop_pass(&net, &stream, seed);
        let (found_span, ss) = ctx_span_pass(&net, &stream, seed);
        assert_eq!(
            found_oneshot, found_noop,
            "instrumentation must not change routing"
        );
        assert_eq!(
            found_noop, found_span,
            "instrumentation must not change routing"
        );
        oneshot_secs = oneshot_secs.min(os);
        noop_secs = noop_secs.min(ns);
        span_secs = span_secs.min(ss);
    }

    let oneshot_ns = oneshot_secs / reqs as f64 * 1e9;
    let noop_ns = noop_secs / reqs as f64 * 1e9;
    let span_ns = span_secs / reqs as f64 * 1e9;
    SizeResult {
        name: format!("n{n}_d{d}_w{w}"),
        nodes: n,
        links: net.link_count(),
        wavelengths: w,
        requests: reqs,
        oneshot_ns_per_req: oneshot_ns,
        ctx_noop_ns_per_req: noop_ns,
        ctx_span_ns_per_req: span_ns,
        gate_speedup: oneshot_ns / noop_ns,
        span_overhead_pct: (span_ns - noop_ns) / noop_ns * 100.0,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (reqs, passes) = if quick { (200, 3) } else { (2000, 5) };

    println!("span-overhead — NoopTracer vs live SpanBuffer (ns/request)\n");
    let mut table = Table::new(&[
        "size", "m", "W", "oneshot", "ctx_noop", "ctx_span", "overhead",
    ]);
    let mut sizes = Vec::new();
    for &(n, d, w) in &[(50usize, 4usize, 8usize), (100, 4, 8)] {
        let res = measure(n, d, w, reqs, passes, 0xB0 + n as u64);
        table.row(vec![
            res.name.clone(),
            res.links.to_string(),
            res.wavelengths.to_string(),
            format!("{:.0}", res.oneshot_ns_per_req),
            format!("{:.0}", res.ctx_noop_ns_per_req),
            format!("{:.0}", res.ctx_span_ns_per_req),
            format!("{:+.1}%", res.span_overhead_pct),
        ]);
        sizes.push(res);
    }
    table.print();

    let report = BenchReport {
        bench: String::from("span_overhead"),
        unit: String::from("ns_per_request"),
        sizes,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_span_overhead.json", &json).expect("write BENCH_span_overhead.json");
    println!("\nwrote BENCH_span_overhead.json");
}
