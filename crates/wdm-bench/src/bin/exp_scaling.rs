//! Experiment T1 — Theorem 1: empirical running-time scaling of the §3.3
//! approximation algorithm, `O(nd + nW² + m log n + nW log(nW))`.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_scaling
//! ```
//!
//! Three sweeps, varying one parameter at a time on random connected
//! networks (20 requests each, wall time per request averaged):
//! n (at fixed degree and W), W (at fixed n, d), d (at fixed n, W).

use wdm_bench::{random_connected_instance, rng, timed, Table};
use wdm_core::disjoint::RobustRouteFinder;
use wdm_core::network::ResidualState;
use wdm_graph::NodeId;

fn measure(n: usize, d: usize, w: usize, requests: usize, seed: u64) -> f64 {
    let mut r = rng(seed);
    let net = random_connected_instance(&mut r, n, d, w);
    let state = ResidualState::fresh(&net);
    let mut finder = RobustRouteFinder::new(&net);
    // Warm the caches once.
    let _ = finder.find(&state, NodeId(0), NodeId((n - 1) as u32));
    let (_, secs) = timed(|| {
        let mut found = 0usize;
        for i in 0..requests {
            let s = NodeId((i * 7 % n) as u32);
            let t = NodeId(((i * 13 + n / 2) % n) as u32);
            if s != t && finder.find(&state, s, t).is_ok() {
                found += 1;
            }
        }
        found
    });
    secs / requests as f64 * 1e3 // ms per request
}

fn main() {
    let requests = 20;

    println!("T1 — scaling of the §3.3 algorithm (ms per request)\n");

    let mut t1 = Table::new(&["n", "d", "W", "ms/request", "x vs prev"]);
    let mut prev: Option<f64> = None;
    for &n in &[25usize, 50, 100, 200, 400] {
        let ms = measure(n, 6, 8, requests, 42 + n as u64);
        t1.row(vec![
            n.to_string(),
            "6".into(),
            "8".into(),
            format!("{ms:.3}"),
            prev.map_or("-".into(), |p| format!("{:.2}", ms / p)),
        ]);
        prev = Some(ms);
    }
    println!("sweep 1: n doubling (expect sub-quadratic growth, ~n log n + nd):");
    t1.print();

    let mut t2 = Table::new(&["n", "d", "W", "ms/request", "x vs prev"]);
    prev = None;
    for &w in &[4usize, 8, 16, 32, 64] {
        let ms = measure(100, 6, w, requests, 777 + w as u64);
        t2.row(vec![
            "100".into(),
            "6".into(),
            w.to_string(),
            format!("{ms:.3}"),
            prev.map_or("-".into(), |p| format!("{:.2}", ms / p)),
        ]);
        prev = Some(ms);
    }
    println!("\nsweep 2: W doubling (expect ~W² term from the refinement DP");
    println!("and the K_v averaging in G' construction):");
    t2.print();

    let mut t3 = Table::new(&["n", "d", "W", "ms/request", "x vs prev"]);
    prev = None;
    for &d in &[3usize, 6, 12, 24] {
        let ms = measure(100, d, 8, requests, 999 + d as u64);
        t3.row(vec![
            "100".into(),
            d.to_string(),
            "8".into(),
            format!("{ms:.3}"),
            prev.map_or("-".into(), |p| format!("{:.2}", ms / p)),
        ]);
        prev = Some(ms);
    }
    println!("\nsweep 3: degree doubling (G' has Σ_v |E_in(v)|·|E_out(v)| ≈ n·d²");
    println!("conversion links, so doubling d at fixed n approaches 4x):");
    t3.print();

    println!("\nTheorem 1 predicts O(nd + nW² + m log n + nW log(nW)); the");
    println!("n sweep should stay near 2x per doubling (linear + log terms),");
    println!("while the W and d sweeps approach 4x once their quadratic terms");
    println!("(nW², n·d² aux links) dominate.");
}
