//! Experiment C2 — active vs passive failure recovery under fibre cuts
//! (the paper's §1 motivation for pre-provisioned backups).
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_failure_recovery [--quick] \
//!     [--telemetry json|summary]
//! ```

use std::collections::BTreeMap;
use wdm_bench::{emit_policy_telemetry, telemetry_mode, Table};
use wdm_core::network::NetworkBuilder;
use wdm_sim::metrics::PolicyTelemetry;
use wdm_sim::parallel::{replication_seeds, run_replications, run_replications_telemetry};
use wdm_sim::policy::Policy;
use wdm_sim::sim::SimConfig;
use wdm_sim::traffic::TrafficModel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (duration, reps) = if quick { (400.0, 3) } else { (1500.0, 4) };
    let mode = match telemetry_mode() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut agg: BTreeMap<String, PolicyTelemetry> = BTreeMap::new();
    let net = NetworkBuilder::nsfnet(16).build();
    // Same splitmix64 derivation as `wdm simulate --reps` and
    // exp_dynamic_sim, from this experiment's own base — replication i is a
    // pure function of (base, i), never of grid position.
    let seeds = replication_seeds(0xC2, reps);

    println!("C2 — recovery under fibre cuts, NSFNET W = 16");
    let mut table = Table::new(&[
        "fail rate",
        "policy",
        "cuts",
        "instant",
        "recomputed",
        "dropped",
        "instant %",
        "mean rec. time",
        "blocking %",
    ]);
    for &fail_rate in &[0.1, 0.3, 0.6] {
        for policy in [
            Policy::CostOnly,
            Policy::Joint {
                a: std::f64::consts::E,
            },
            Policy::PrimaryOnly,
        ] {
            let cfg = SimConfig {
                policy,
                traffic: TrafficModel::new(3.0, 15.0),
                duration,
                failure_rate: fail_rate,
                mean_repair: 20.0,
                reconfig_threshold: None,
                seed: 0,
                switchover_time: 0.001,
                setup_time_per_hop: 0.05,
            };
            let runs = if mode.is_some() {
                let (runs, snap) = run_replications_telemetry(&net, cfg, &seeds);
                agg.entry(policy.name().to_string())
                    .or_insert_with(|| PolicyTelemetry::new(policy.name()))
                    .merge(&PolicyTelemetry {
                        policy: policy.name().to_string(),
                        replications: seeds.len() as u64,
                        snapshot: snap,
                    });
                runs
            } else {
                run_replications(&net, cfg, &seeds)
            };
            let cuts: u64 = runs.iter().map(|m| m.failures_injected).sum();
            let fast: u64 = runs.iter().map(|m| m.fast_switchovers).sum();
            let passive: u64 = runs.iter().map(|m| m.passive_recoveries).sum();
            let dropped: u64 = runs.iter().map(|m| m.recovery_failures).sum();
            let total_hit = fast + passive + dropped;
            let instant_pct = if total_hit > 0 {
                fast as f64 / total_hit as f64 * 100.0
            } else {
                0.0
            };
            let blocking: f64 = runs
                .iter()
                .map(|m| m.blocking_probability() * 100.0)
                .sum::<f64>()
                / runs.len() as f64;
            let rec_time: f64 = {
                let sum: f64 = runs.iter().map(|m| m.recovery_time_sum).sum();
                let n: u64 = runs.iter().map(|m| m.recovery_events).sum();
                if n == 0 {
                    0.0
                } else {
                    sum / n as f64
                }
            };
            table.row(vec![
                format!("{fail_rate:.1}"),
                policy.name().into(),
                cuts.to_string(),
                fast.to_string(),
                passive.to_string(),
                dropped.to_string(),
                format!("{instant_pct:.1}"),
                format!("{rec_time:.4}"),
                format!("{blocking:.2}"),
            ]);
        }
    }
    table.print();
    println!("\n'instant' = pre-provisioned backup switchover (switchover time");
    println!("0.001); 'recomputed' = passive re-establishment charged 0.05 per");
    println!("hop of the new route — 'mean rec. time' quantifies the paper's");
    println!("'much smaller failure recovery delay' claim directly;");
    println!("'dropped' = no recovery route existed. The protected policies");
    println!("answer the vast majority of primary-path cuts instantly, at the");
    println!("price of reserving roughly twice the capacity (higher blocking).");

    if let Some(mode) = mode {
        if let Err(e) = emit_policy_telemetry("exp_failure_recovery", mode, &agg) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
