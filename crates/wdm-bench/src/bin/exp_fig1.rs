//! Experiment F1 — structural reproduction of the paper's Figure 1: the
//! residual-network → auxiliary-graph construction of §3.3.1, printed as a
//! table of every rule with its check.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_fig1
//! ```

use wdm_bench::Table;
use wdm_core::aux_graph::{AuxArc, AuxGraph, AuxNode, AuxSpec};
use wdm_core::conversion::ConversionTable;
use wdm_core::network::{NetworkBuilder, ResidualState};
use wdm_core::wavelength::WavelengthSet;
use wdm_graph::NodeId;

fn main() {
    // Residual network with Figure 1's qualitative features.
    let mut b = NetworkBuilder::new(3);
    let n: Vec<_> = (0..4)
        .map(|_| b.add_node(ConversionTable::Full { cost: 1.0 }))
        .collect();
    let edges = [
        b.add_link_with(n[0], n[1], 2.0, WavelengthSet::from_indices(&[0, 1])),
        b.add_link_with(n[1], n[3], 2.0, WavelengthSet::from_indices(&[1, 2])),
        b.add_link_with(n[0], n[2], 3.0, WavelengthSet::from_indices(&[0])),
        b.add_link_with(n[2], n[3], 3.0, WavelengthSet::from_indices(&[2])),
        b.add_link_with(n[1], n[2], 1.0, WavelengthSet::from_indices(&[0, 1, 2])),
    ];
    let net = b.build();
    let state = ResidualState::fresh(&net);
    let aux = AuxGraph::build(&net, &state, NodeId(0), NodeId(3), AuxSpec::g_prime());

    let count = |pred: &dyn Fn(AuxArc) -> bool| {
        aux.graph
            .edge_ids()
            .filter(|&e| pred(aux.graph.edge(e).kind))
            .count()
    };
    let traversals = count(&|k| matches!(k, AuxArc::Traversal(_)));
    let conversions = count(&|k| matches!(k, AuxArc::Conversion(_)));
    let taps = count(&|k| matches!(k, AuxArc::Tap));

    let mut table = Table::new(&["§3.3.1 rule", "expected", "built", "ok"]);
    let mut check = |rule: &str, expected: String, built: String| {
        let ok = expected == built;
        table.row(vec![
            rule.into(),
            expected,
            built,
            if ok { "yes" } else { "NO" }.into(),
        ]);
        assert!(ok, "rule violated: {rule}");
    };
    check(
        "|V'| = 2m + 2 (edge-nodes + s' + t'')",
        format!("{}", 2 * net.link_count() + 2),
        format!("{}", aux.graph.node_count()),
    );
    check(
        "one traversal link per admitted physical link",
        format!("{}", net.link_count()),
        format!("{traversals}"),
    );
    check(
        "conversion links = admitted (E_in x E_out) pairs",
        "4".into(), // node1: e0 x {e1, e4}; node2: {e2, e4} x e3
        format!("{conversions}"),
    );
    check(
        "taps = |E_out(s)| + |E_in(t)|",
        "4".into(),
        format!("{taps}"),
    );

    // Weight rules.
    let trav_weight = |pe| {
        aux.graph
            .edge_ids()
            .find(|&e| matches!(aux.graph.edge(e).kind, AuxArc::Traversal(x) if x == pe))
            .map(|e| aux.graph.edge(e).weight)
            .expect("admitted link has a traversal arc")
    };
    check(
        "ω(traversal e0) = Σ w / |Λ_avail| (uniform: 2.0)",
        "2.000".into(),
        format!("{:.3}", trav_weight(edges[0])),
    );
    let conv_weight = aux
        .graph
        .edge_ids()
        .find(|&e| {
            matches!(aux.graph.edge(e).kind, AuxArc::Conversion(_))
                && matches!(aux.graph.node(aux.graph.src(e)), AuxNode::InNode(x) if *x == edges[0])
                && matches!(aux.graph.node(aux.graph.dst(e)), AuxNode::OutNode(x) if *x == edges[1])
        })
        .map(|e| aux.graph.edge(e).weight)
        .expect("conversion arc exists");
    check(
        "ω(conv e0 -> e1) = Σ c_v / K_v = 3/4",
        "0.750".into(),
        format!("{conv_weight:.3}"),
    );

    println!("F1 — §3.3.1 auxiliary-graph construction (the paper's Figure 1):\n");
    table.print();
    println!("\nall construction rules verified. See also the");
    println!("`aux_graph_walkthrough` example for the DOT rendering.");
}
