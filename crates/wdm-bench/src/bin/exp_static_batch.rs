//! Static-provisioning ablation: processing order × policy on a full-mesh
//! demand matrix (the offline design setting of the paper's citations
//! \[17, 3\], used here to quantify how much the §4 load-awareness helps
//! when the whole demand set is known in advance).
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_static_batch
//! ```

use wdm_bench::Table;
use wdm_core::network::{NetworkBuilder, ResidualState};
use wdm_sim::batch::{full_mesh_demands, provision_batch, BatchOrder};
use wdm_sim::policy::Policy;

fn main() {
    let a = std::f64::consts::E;
    println!("Static full-mesh provisioning on NSFNET (one demand per ordered pair)\n");
    let mut table = Table::new(&[
        "W",
        "policy",
        "order",
        "accepted",
        "total cost",
        "max ρ",
        "p90 ρ",
        "mean ρ",
    ]);
    for &w in &[8usize, 16] {
        let net = NetworkBuilder::nsfnet(w).build();
        let st = ResidualState::fresh(&net);
        let demands = full_mesh_demands(14, 1);
        for policy in [Policy::CostOnly, Policy::Joint { a }] {
            for order in [
                BatchOrder::AsGiven,
                BatchOrder::ShortestFirst,
                BatchOrder::LongestFirst,
            ] {
                let out = provision_batch(&net, &st, &demands, policy, order);
                table.row(vec![
                    w.to_string(),
                    policy.name().into(),
                    format!("{order:?}"),
                    format!("{}/{}", out.provisioned.len(), demands.len()),
                    format!("{:.0}", out.total_cost),
                    format!("{:.3}", out.final_load.max),
                    format!("{:.3}", out.final_load.p90),
                    format!("{:.3}", out.final_load.mean),
                ]);
            }
        }
    }
    table.print();
    println!("\nReading: under heavy saturation, routing the hungriest demands");
    println!("first (LongestFirst) exhausts capacity early and *lowers* the");
    println!("accepted count — the classic longest-first intuition only pays");
    println!("off when the whole set nearly fits. Shortest-first minimises the");
    println!("cost per accepted demand; the joint policy keeps acceptance at");
    println!("least as high as cost-only at equal order while spending slightly");
    println!("more per route.");
}
