//! Experiment L1 — Lemma 1's hardness in practice: exact solvers blow up
//! exponentially on the ladder family while the approximation stays
//! polynomial.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_hardness_gadget
//! ```
//!
//! The ladder of `k` rungs has `≥ 2^k` simple `s → t` paths. The exhaustive
//! pair solver enumerates all of them; the §3.3 approximation runs two
//! Dijkstra passes. We also instantiate Lemma 1's reduction gadget itself
//! (2 wavelengths, no conversion, complementary availability) and show the
//! exact solver still answers it on small sizes.

use wdm_bench::{timed, Table};
use wdm_core::conversion::ConversionTable;
use wdm_core::disjoint::RobustRouteFinder;
use wdm_core::exact::exhaustive_best_pair;
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_core::wavelength::WavelengthSet;
use wdm_graph::NodeId;

/// Ladder topology lifted to a WDM net with full conversion.
fn ladder_net(k: usize) -> WdmNetwork {
    let topo = wdm_graph::topology::ladder(k, 1.0);
    NetworkBuilder::from_topology(&topo, 2, ConversionTable::Full { cost: 0.1 }, 1.0).build()
}

/// Lemma 1's reduction gadget: pair-weighted links become wavelength
/// availability, no conversion anywhere. `(0,0) -> both λ`, `(1,0) -> λ2
/// only`, `(0,1) -> λ1 only`.
fn lemma1_gadget(k: usize) -> WdmNetwork {
    let mut b = NetworkBuilder::new(2);
    let n = 2 * k + 2;
    let nodes: Vec<_> = (0..n).map(|_| b.add_node(ConversionTable::None)).collect();
    let t = n - 1;
    let both = WavelengthSet::full(2);
    let only0 = WavelengthSet::from_indices(&[0]);
    let only1 = WavelengthSet::from_indices(&[1]);
    // Two interleaved chains with availability constraints that force the
    // two legs onto complementary wavelengths.
    let mut prev_a = 0usize;
    let mut prev_b = 0usize;
    for i in 0..k {
        let a = 2 * i + 1;
        let bn = 2 * i + 2;
        b.add_link_with(nodes[prev_a], nodes[a], 1.0, only0);
        b.add_link_with(nodes[prev_b], nodes[bn], 1.0, only1);
        // Cross links both ways, both wavelengths (the "(0,0)" links).
        b.add_link_with(nodes[a], nodes[bn], 1.0, both);
        b.add_link_with(nodes[bn], nodes[a], 1.0, both);
        prev_a = a;
        prev_b = bn;
    }
    b.add_link_with(nodes[prev_a], nodes[t], 1.0, only0);
    b.add_link_with(nodes[prev_b], nodes[t], 1.0, only1);
    b.build()
}

fn main() {
    println!("L1 — exhaustive-search blow-up on the ladder family\n");
    let mut table = Table::new(&[
        "k",
        "nodes",
        "paths",
        "pairs",
        "exact ms",
        "approx ms",
        "same cost",
    ]);
    for k in 1..=9usize {
        let net = ladder_net(k);
        let state = ResidualState::fresh(&net);
        let s = NodeId(0);
        let t = NodeId((2 * k + 1) as u32);
        let (exact_out, exact_secs) = timed(|| exhaustive_best_pair(&net, &state, s, t, 2_000_000));
        let (exact, stats) = exact_out;
        let exact = exact.expect("ladder is 2-edge-connected");
        let (approx, approx_secs) = timed(|| {
            RobustRouteFinder::new(&net)
                .find(&state, s, t)
                .expect("feasible")
        });
        table.row(vec![
            k.to_string(),
            net.node_count().to_string(),
            stats.paths_enumerated.to_string(),
            stats.pairs_checked.to_string(),
            format!("{:.2}", exact_secs * 1e3),
            format!("{:.3}", approx_secs * 1e3),
            if (approx.total_cost() - exact.total_cost()).abs() < 1e-9 {
                "yes".into()
            } else {
                format!("{:.2}x", approx.total_cost() / exact.total_cost())
            },
        ]);
    }
    table.print();
    println!("\npaths grow ~2^k -> exhaustive time explodes; the approximation");
    println!("is two Dijkstra passes and stays flat.\n");

    println!("Lemma 1 reduction gadget (2 λ, no conversion): exact solver answers");
    let mut t2 = Table::new(&["k", "exact cost", "exact ms", "legs on distinct λ"]);
    for k in 1..=6usize {
        let net = lemma1_gadget(k);
        let state = ResidualState::fresh(&net);
        let s = NodeId(0);
        let t = NodeId((2 * k + 1) as u32);
        let (out, secs) = timed(|| exhaustive_best_pair(&net, &state, s, t, 2_000_000));
        let (route, _) = out;
        match route {
            Some(r) => {
                let l1 = r.primary.hops[0].wavelength;
                let l2 = r.backup.hops[0].wavelength;
                t2.row(vec![
                    k.to_string(),
                    format!("{:.1}", r.total_cost()),
                    format!("{:.2}", secs * 1e3),
                    (l1 != l2).to_string(),
                ]);
            }
            None => t2.row(vec![
                k.to_string(),
                "-".into(),
                format!("{:.2}", secs * 1e3),
                "n/a".into(),
            ]),
        }
    }
    t2.print();
}
