//! Experiment L2 — Lemma 2: the Liang–Shen refinement never loses to the
//! naive auxiliary-cost mapping, and how much it gains in practice.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_refinement_gain
//! ```
//!
//! 500 random instances per cost regime. "gain" is
//! `1 − refined / aux` (0 = refinement changed nothing).

use rand::Rng;
use rayon::prelude::*;
use wdm_bench::{rng, summarize, Table};
use wdm_core::conversion::ConversionTable;
use wdm_core::disjoint::RobustRouteFinder;
use wdm_core::network::{NetworkBuilder, ResidualState};
use wdm_core::wavelength::{Wavelength, WavelengthSet};
use wdm_graph::NodeId;

#[derive(Clone, Copy)]
enum Regime {
    /// Uniform per-λ link costs (paper assumption (ii)).
    Uniform,
    /// Random per-λ link costs: averaging in G' hides structure the DP finds.
    PerLambda,
}

fn run_cell(regime: Regime, conv_cost: f64, instances: usize) -> (Vec<f64>, usize) {
    let results: Vec<Option<f64>> = (0..instances)
        .into_par_iter()
        .map(|i| {
            let mut r = rng(88_000 + i as u64 + (conv_cost * 100.0) as u64);
            let n = r.gen_range(5..10usize);
            let w = 4usize;
            let mut b = NetworkBuilder::new(w);
            for _ in 0..n {
                b.add_node(ConversionTable::Full { cost: conv_cost });
            }
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    if u != v && r.gen_bool(0.4) {
                        let mut set = WavelengthSet::empty();
                        for l in 0..w {
                            if r.gen_bool(0.75) {
                                set.insert(Wavelength(l as u8));
                            }
                        }
                        if set.is_empty() {
                            set.insert(Wavelength(0));
                        }
                        match regime {
                            Regime::Uniform => {
                                b.add_link_with(NodeId(u), NodeId(v), r.gen_range(1.0..10.0), set);
                            }
                            Regime::PerLambda => {
                                let costs: Vec<f64> =
                                    (0..w).map(|_| r.gen_range(1.0..10.0)).collect();
                                b.add_link_per_lambda(NodeId(u), NodeId(v), set, costs);
                            }
                        }
                    }
                }
            }
            let net = b.build();
            let state = ResidualState::fresh(&net);
            let (_, diag) = RobustRouteFinder::new(&net)
                .find_with_diagnostics(&state, NodeId(0), NodeId(n as u32 - 1))
                .ok()?;
            assert!(
                diag.refined_cost <= diag.aux_cost + 1e-9,
                "Lemma 2 violated: {} > {}",
                diag.refined_cost,
                diag.aux_cost
            );
            Some(1.0 - diag.refined_cost / diag.aux_cost)
        })
        .collect();
    let gains: Vec<f64> = results.into_iter().flatten().collect();
    let feasible = gains.len();
    (gains, feasible)
}

fn main() {
    let instances = 500;
    println!("L2 — Lemma 2 refinement gain (1 - refined/aux), {instances} instances/cell\n");
    let mut table = Table::new(&[
        "link costs",
        "conv cost",
        "feasible",
        "mean gain",
        "p95 gain",
        "max gain",
        "violations",
    ]);
    for (regime, label) in [(Regime::Uniform, "uniform"), (Regime::PerLambda, "per-λ")] {
        for &conv in &[0.1, 1.0, 5.0] {
            let (gains, feasible) = run_cell(regime, conv, instances);
            let s = summarize(&gains);
            table.row(vec![
                label.into(),
                format!("{conv:.1}"),
                format!("{feasible}/{instances}"),
                format!("{:.4}", s.mean),
                format!("{:.4}", s.p95),
                format!("{:.4}", s.max),
                "0".into(), // the run_cell assert would have panicked
            ]);
        }
    }
    table.print();
    println!("\nUnder the paper's uniform-cost assumption the gain comes from");
    println!("dropping the averaged conversion charges; with per-λ costs the");
    println!("wavelength DP also exploits cheap channels the averages hide.");
}
