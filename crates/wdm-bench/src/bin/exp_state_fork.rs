//! Experiment — the cost of forking the residual state.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_state_fork            # full
//! cargo run --release -p wdm-bench --bin exp_state_fork -- --quick # smoke
//! ```
//!
//! A speculative window, a MinCog probe, or a reconfiguration sweep needs
//! a throwaway fork of the [`ResidualState`] it can mutate and discard.
//! Two ways to get one:
//!
//! * **clone** — copy the whole state (O(m) in the link count), mutate the
//!   copy, drop it: the pre-journal pattern;
//! * **txn** — open a [`Txn`] on the live state, mutate through its undo
//!   log, roll back: O(Δ) in the links actually touched.
//!
//! Measured per fork at Δ ∈ {1, 4, 16, 64} touched channels on an
//! m≈1200-link instance. Both variants leave the state bit-identical, so
//! the ratio is measured on provably equal work. CI gates on
//! `gate_speedup` — the Δ=4 clone/txn ratio, Δ=4 being a typical
//! single-route footprint — via `wdm telemetry diff`.
//!
//! Writes `BENCH_state_fork.json` to the working directory (the committed
//! artifact lives at the repo root).

use std::hint::black_box;
use wdm_bench::{random_connected_instance, rng, timed, Table};
use wdm_core::journal::Txn;
use wdm_core::network::ResidualState;
use wdm_core::semilightpath::Hop;
use wdm_core::wavelength::Wavelength;
use wdm_graph::EdgeId;

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct DeltaResult {
    delta: usize,
    clone_ns_per_fork: f64,
    txn_ns_per_fork: f64,
    speedup: f64,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    bench: String,
    unit: String,
    nodes: usize,
    links: usize,
    wavelengths: usize,
    forks_per_pass: usize,
    /// Clone/txn ratio at Δ=4 (a typical single-route footprint) — the CI
    /// perf-gate metric.
    gate_speedup: f64,
    deltas: Vec<DeltaResult>,
}

const DELTAS: [usize; 4] = [1, 4, 16, 64];
const GATE_DELTA: usize = 4;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, forks, passes) = if quick {
        (60, 2_000, 2)
    } else {
        (200, 20_000, 3)
    };
    let (d, w) = (6usize, 16usize);

    let mut r = rng(0xF08C);
    let net = random_connected_instance(&mut r, n, d, w);
    let m = net.link_count();
    let state = ResidualState::fresh(&net);
    println!("state-fork — O(m) clone vs O(Δ) txn (n={n}, m={m}, W={w}, {forks} forks/pass)\n");

    let mut clone_secs = [f64::INFINITY; DELTAS.len()];
    let mut txn_secs = [f64::INFINITY; DELTAS.len()];
    for _ in 0..passes {
        for (slot, &delta) in DELTAS.iter().enumerate() {
            let hops: Vec<Hop> = (0..delta.min(m))
                .map(|i| Hop {
                    edge: EdgeId::from(i),
                    wavelength: Wavelength(0),
                })
                .collect();

            // Clone fork: copy, mutate the copy, drop it.
            let (_, secs) = timed(|| {
                for _ in 0..forks {
                    let mut fork = state.clone();
                    for h in &hops {
                        fork.occupy(&net, h.edge, h.wavelength)
                            .expect("fresh channels");
                    }
                    black_box(&fork);
                }
            });
            clone_secs[slot] = clone_secs[slot].min(secs);

            // Txn fork: mutate the live state through the undo log, roll
            // back. The state is bit-identical afterwards (the journal
            // tests prove it), so each iteration starts from the same
            // place the clone variant does.
            let mut live = state.clone();
            let (_, secs) = timed(|| {
                for _ in 0..forks {
                    let mut txn = Txn::begin(&mut live);
                    txn.occupy_hops(&net, &hops).expect("fresh channels");
                    black_box(txn.touched());
                    txn.rollback();
                }
            });
            txn_secs[slot] = txn_secs[slot].min(secs);
            assert_eq!(live, state, "rollback must restore the fork point");
        }
    }

    let mut table = Table::new(&["Δ (channels)", "clone ns/fork", "txn ns/fork", "speedup"]);
    let mut deltas = Vec::new();
    let mut gate_speedup = 0.0;
    for ((&delta, &cs), &ts) in DELTAS.iter().zip(&clone_secs).zip(&txn_secs) {
        let res = DeltaResult {
            delta,
            clone_ns_per_fork: cs / forks as f64 * 1e9,
            txn_ns_per_fork: ts / forks as f64 * 1e9,
            speedup: cs / ts,
        };
        table.row(vec![
            delta.to_string(),
            format!("{:.0}", res.clone_ns_per_fork),
            format!("{:.0}", res.txn_ns_per_fork),
            format!("{:.2}x", res.speedup),
        ]);
        if delta == GATE_DELTA {
            gate_speedup = res.speedup;
        }
        deltas.push(res);
    }
    table.print();

    let report = BenchReport {
        bench: String::from("state_fork"),
        unit: String::from("ns_per_fork"),
        nodes: n,
        links: m,
        wavelengths: w,
        forks_per_pass: forks,
        gate_speedup,
        deltas,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_state_fork.json", &json).expect("write BENCH_state_fork.json");
    println!("\nwrote BENCH_state_fork.json");
}
