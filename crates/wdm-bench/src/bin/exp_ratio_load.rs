//! Experiment T3 — Theorem 3: the MinCog geometric threshold search lands
//! within 3× of the exact minimal feasible load threshold.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_ratio_load
//! ```
//!
//! Sweeps the exponential base `a ∈ {2, e, 10}` and two preload levels on
//! both random instances and NSFNET.

use rayon::prelude::*;
use wdm_bench::{random_instance, rng, summarize, InstanceParams, Table};
use wdm_core::mincog::{exact_min_load_threshold, find_two_paths_mincog, route_bottleneck_load};
use wdm_core::network::{NetworkBuilder, ResidualState};
use wdm_graph::{EdgeId, NodeId};

fn main() {
    let mut table = Table::new(&[
        "topology", "a", "preload", "feasible", "mean", "p95", "max", "probes", "bound ok",
    ]);
    let bases = [2.0, std::f64::consts::E, 10.0];

    for &a in &bases {
        for &preload in &[0.2, 0.5] {
            // Random instances.
            let per_cell = 120usize;
            let out: Vec<Option<(f64, usize)>> = (0..per_cell)
                .into_par_iter()
                .map(|i| {
                    let mut r = rng(31_000 + i as u64 + (preload * 1e4) as u64);
                    // Uniform capacities (lambda_p = 1.0): Theorem 3's 3x
                    // bound applies exactly to achieved bottleneck loads.
                    let (net, state) = random_instance(
                        &mut r,
                        InstanceParams {
                            n: 8,
                            w: 4,
                            link_p: 0.45,
                            lambda_p: 1.0,
                            preload,
                            premise: true,
                        },
                    );
                    let s = NodeId(0);
                    let t = NodeId(7);
                    let h = find_two_paths_mincog(&net, &state, s, t, a).ok()?;
                    let e = exact_min_load_threshold(&net, &state, s, t, a)
                        .expect("heuristic feasible implies exact feasible");
                    let b_heur = route_bottleneck_load(&net, &state, &h.route);
                    Some((b_heur / e.threshold, h.probes))
                })
                .collect();
            let pairs: Vec<(f64, usize)> = out.into_iter().flatten().collect();
            let ratios: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let probes: f64 =
                pairs.iter().map(|p| p.1 as f64).sum::<f64>() / pairs.len().max(1) as f64;
            let s = summarize(&ratios);
            table.row(vec![
                "random(n=8,W=4)".into(),
                format!("{a:.2}"),
                format!("{preload:.1}"),
                format!("{}/{}", s.n, per_cell),
                format!("{:.4}", s.mean),
                format!("{:.4}", s.p95),
                format!("{:.4}", s.max),
                format!("{probes:.1}"),
                if s.max <= 3.0 + 1e-9 {
                    "yes"
                } else {
                    "VIOLATED"
                }
                .into(),
            ]);
        }
    }

    // NSFNET with deterministic preload.
    let net = NetworkBuilder::nsfnet(8).build();
    for &a in &bases {
        let mut r = rng(5150);
        let mut ratios = Vec::new();
        let mut probes = Vec::new();
        for trial in 0..60u64 {
            let mut state = ResidualState::fresh(&net);
            use rand::Rng;
            for ei in 0..net.link_count() {
                let e = EdgeId::from(ei);
                for l in net.lambda(e).iter() {
                    if r.gen_bool(0.4) {
                        let _ = state.occupy(&net, e, l);
                    }
                }
            }
            let s = NodeId((trial % 14) as u32);
            let t = NodeId(((trial * 5 + 7) % 14) as u32);
            if s == t {
                continue;
            }
            if let Ok(h) = find_two_paths_mincog(&net, &state, s, t, a) {
                let e = exact_min_load_threshold(&net, &state, s, t, a).expect("feasible");
                ratios.push(route_bottleneck_load(&net, &state, &h.route) / e.threshold);
                probes.push(h.probes as f64);
            }
        }
        let s = summarize(&ratios);
        table.row(vec![
            "NSFNET(W=8)".into(),
            format!("{a:.2}"),
            "0.4".into(),
            format!("{}/60", s.n),
            format!("{:.4}", s.mean),
            format!("{:.4}", s.p95),
            format!("{:.4}", s.max),
            format!("{:.1}", summarize(&probes).mean),
            if s.max <= 3.0 + 1e-9 {
                "yes"
            } else {
                "VIOLATED"
            }
            .into(),
        ]);
    }

    println!("T3 — Theorem 3 ratio: MinCog achieved bottleneck load / exact optimum B*:\n");
    table.print();
    println!("\nThe paper's bound is 3.0; the geometric search typically lands");
    println!("much closer because the candidate thresholds are coarse.");
}
