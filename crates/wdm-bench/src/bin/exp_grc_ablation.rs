//! Ablation — the §4.2 `G_rc` traversal-weight discrepancy.
//!
//! The paper's printed formula `ω = Σ_{λ∈Λ_avail} w(e,λ)/N(e)` equals
//! `w·(1 − ρ(e))` under uniform costs: *loaded links get discounted*, which
//! attracts phase-2 routes to hot links — the opposite of §4's goal. The
//! paper's prose ("the average of all possible weights") describes division
//! by `|Λ_avail(e)|` instead. This binary measures both variants under
//! dynamic traffic.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_grc_ablation [--quick]
//! ```

use wdm_bench::Table;
use wdm_core::network::NetworkBuilder;
use wdm_sim::metrics::{mean_std, Metrics};
use wdm_sim::parallel::run_replications;
use wdm_sim::policy::Policy;
use wdm_sim::sim::SimConfig;
use wdm_sim::traffic::TrafficModel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (duration, reps) = if quick { (300.0, 3) } else { (800.0, 4) };
    let net = NetworkBuilder::nsfnet(16).build();
    let seeds: Vec<u64> = (0..reps as u64).collect();
    let a = std::f64::consts::E;

    println!("G_rc weight ablation, NSFNET W = 16 ({reps} reps x {duration} units)\n");
    let mut table = Table::new(&[
        "erlangs",
        "variant",
        "blocking %",
        "mean cost",
        "mean ρ",
        "p90 ρ(final)",
    ]);
    for &erl in &[40.0, 80.0] {
        for (policy, label) in [
            (Policy::CostOnly, "cost-only (no threshold)"),
            (Policy::LoadOnly { a }, "load-only (exp weights)"),
            (Policy::Joint { a }, "joint, avg/|avail| (fixed)"),
            (Policy::JointAsPrinted { a }, "joint, avg/N (as printed)"),
        ] {
            let cfg = SimConfig {
                policy,
                traffic: TrafficModel::new(erl / 10.0, 10.0),
                duration,
                failure_rate: 0.0,
                mean_repair: 1.0,
                reconfig_threshold: None,
                seed: 0,
                switchover_time: 0.001,
                setup_time_per_hop: 0.05,
            };
            let runs = run_replications(&net, cfg, &seeds);
            let stat =
                |f: &dyn Fn(&Metrics) -> f64| mean_std(&runs.iter().map(f).collect::<Vec<_>>());
            let (bp, sd) = stat(&|m| m.blocking_probability() * 100.0);
            let (cost, _) = stat(&|m| m.mean_route_cost());
            let (load, _) = stat(&|m| m.mean_network_load());
            let (p90, _) = stat(&|m| m.final_snapshot.as_ref().map_or(0.0, |s| s.p90));
            table.row(vec![
                format!("{erl:.0}"),
                label.into(),
                format!("{bp:.2}±{sd:.2}"),
                format!("{cost:.1}"),
                format!("{load:.3}"),
                format!("{p90:.3}"),
            ]);
        }
    }
    table.print();
    println!("\nIf the printed formula were intended, its row would dominate the");
    println!("fixed variant; the measured ordering shows the opposite.");
}
