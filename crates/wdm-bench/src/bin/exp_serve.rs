//! Experiment — daemon throughput under open-loop load (`wdm serve`).
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_serve            # full
//! cargo run --release -p wdm-bench --bin exp_serve -- --quick # smoke
//! ```
//!
//! Starts the provisioning daemon in-process on a loopback ephemeral port
//! (NSFNET, 8 wavelengths, thread-per-core worker pool) and drives it with
//! the `wdm loadgen` generator: Poisson provision arrivals, exponential
//! holding times, a small fail/repair mix. The generator is open-loop, so
//! the offered rate does not slow down with the server — achieved
//! requests/sec and the p50/p99 request latencies are the daemon's own
//! numbers, not the client's.
//!
//! The benchmark runs **two legs**: tracer-off (the gated headline `rps`)
//! and tracer-on (`--trace`-style span recording in every worker,
//! reported as `rps_traced`). The second leg prices the observability
//! tax; the committed artifact carries both so CI can gate either series.
//!
//! Two acceptance checks run per leg before anything is reported: the run
//! must finish with **zero transport errors**, and the write-ahead log
//! must replay to exactly the live final `semantic_hash` (zero lost
//! mutations). Writes the machine-readable results to `BENCH_serve.json`
//! in the working directory (the committed artifact lives at the repo
//! root); CI's `serve-smoke` job gates the `rps*` series against the
//! committed baseline with `wdm telemetry diff --fail-drop 15`.

use std::time::Duration;

use wdm_bench::Table;
use wdm_core::network::{NetworkBuilder, WdmNetwork};
use wdm_serve::daemon::{run, Control, ServeConfig};
use wdm_serve::loadgen::{self, LoadgenConfig, LoadgenReport};

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    bench: String,
    unit: String,
    /// Worker threads the daemon ran with.
    threads: usize,
    /// Offered arrival rate (requests/sec, Poisson).
    offered_rate: f64,
    /// Requests sent (provisions + teardowns + fail/repair).
    offered: u64,
    ok: u64,
    blocked: u64,
    shed: u64,
    provisions: u64,
    /// Journal events the WAL replayed (each one flushed pre-response).
    journal_events: u64,
    /// Achieved requests/sec, tracer off — the gated headline number.
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Achieved requests/sec with span tracing live in every worker.
    rps_traced: f64,
    p50_ms_traced: f64,
    p99_ms_traced: f64,
}

/// One full daemon lifecycle under load. When `trace` is set the daemon
/// records spans in every worker and writes the trace file on shutdown.
fn run_leg(
    net: &WdmNetwork,
    rate: f64,
    duration: f64,
    trace: Option<std::path::PathBuf>,
) -> (LoadgenReport, u64) {
    let tag = if trace.is_some() { "traced" } else { "plain" };
    let wal_path = std::env::temp_dir().join(format!(
        "wdm-exp-serve-{}-{}.wal.jsonl",
        std::process::id(),
        tag
    ));
    let mut cfg = ServeConfig::new("127.0.0.1:0", &wal_path);
    cfg.threads = 4;
    cfg.checkpoint_every = 256;
    cfg.trace_path = trace.clone();
    let control = Control::new();

    let (lr, report) = std::thread::scope(|s| {
        let server = s.spawn(|| run(net, &cfg, &control));
        let addr = control
            .wait_addr(Duration::from_secs(10))
            .expect("daemon binds");
        let mut lg = LoadgenConfig::new(
            addr.to_string(),
            net.node_count() as u32,
            net.link_count() as u32,
        );
        lg.rate = rate;
        lg.duration = duration;
        lg.mean_hold = 0.5;
        lg.fail_fraction = 0.01;
        lg.seed = 42;
        let lr = loadgen::run(&lg);
        control.shutdown();
        let report = server.join().expect("server thread").expect("clean run");
        (lr, report)
    });

    // Acceptance before measurement: no transport errors, and the WAL
    // replays to the live lineage bit-for-bit.
    assert_eq!(lr.errors, 0, "transport errors against a live daemon");
    let rec = wdm_serve::wal::recover(&wal_path).expect("WAL recovers");
    assert_eq!(
        rec.semantic_hash(),
        report.semantic_hash,
        "zero lost mutations: the WAL must replay to the live hash"
    );
    assert!(rec.clean_shutdown(), "graceful-close line present");
    std::fs::remove_file(&wal_path).ok();
    if let Some(path) = &trace {
        assert!(path.exists(), "traced leg writes its trace file");
    }

    (lr, report.journal_seq)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The generator sends sequentially, so the achieved rate is bounded by
    // one round-trip per request; 400/s leaves ~2.5 ms of headroom per
    // request before the open-loop schedule starts slipping.
    let (rate, duration) = if quick { (300.0, 1.5) } else { (400.0, 5.0) };

    let net = NetworkBuilder::nsfnet(8).build();
    let trace_path =
        std::env::temp_dir().join(format!("wdm-exp-serve-{}.trace.json", std::process::id()));

    let (lr, journal_events) = run_leg(&net, rate, duration, None);
    let (lr_traced, _) = run_leg(&net, rate, duration, Some(trace_path.clone()));
    std::fs::remove_file(&trace_path).ok();

    println!("serve — daemon throughput under open-loop load\n");
    let mut table = Table::new(&["leg", "offered", "ok", "blocked", "rps", "p50", "p99"]);
    for (tag, r) in [("tracer-off", &lr), ("tracer-on", &lr_traced)] {
        table.row(vec![
            tag.to_string(),
            r.offered.to_string(),
            r.ok.to_string(),
            r.blocked.to_string(),
            format!("{:.0}/s", r.rps),
            format!("{:.2}ms", r.p50_ms),
            format!("{:.2}ms", r.p99_ms),
        ]);
    }
    table.print();
    let ratio = if lr.rps > 0.0 {
        lr_traced.rps / lr.rps
    } else {
        1.0
    };
    println!("\ntracer-on throughput ratio: {:.3}", ratio);
    if !quick {
        // The committed artifact must witness the observability budget:
        // tracer-on within 15% of tracer-off.
        assert!(
            ratio >= 0.85,
            "tracer-on rps {:.1} fell more than 15% below tracer-off {:.1}",
            lr_traced.rps,
            lr.rps
        );
    }

    let out = BenchReport {
        bench: String::from("serve"),
        unit: String::from("requests_per_second"),
        threads: 4,
        offered_rate: rate,
        offered: lr.offered,
        ok: lr.ok,
        blocked: lr.blocked,
        shed: lr.shed,
        provisions: lr.provisions,
        journal_events,
        rps: lr.rps,
        p50_ms: lr.p50_ms,
        p99_ms: lr.p99_ms,
        rps_traced: lr_traced.rps,
        p50_ms_traced: lr_traced.p50_ms,
        p99_ms_traced: lr_traced.p99_ms,
    };
    let json = serde_json::to_string_pretty(&out).expect("report serialises");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
