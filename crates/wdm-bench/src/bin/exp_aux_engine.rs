//! Experiment — incremental auxiliary-graph engine vs scratch rebuild.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_aux_engine            # full
//! cargo run --release -p wdm-bench --bin exp_aux_engine -- --quick # smoke
//! ```
//!
//! For each network size, routes the same churn-interleaved request stream
//! two ways and reports ns/request:
//!
//! * **scratch** — the pre-engine pipeline: `AuxGraph::build` over the
//!   residual state, then the allocating Suurballe (`edge_disjoint_pair`);
//! * **engine**  — a persistent [`AuxEngine`] synced per request (only
//!   dirty links refreshed) searched by a reusable [`SearchArena`] over the
//!   pointer-chasing skeleton graph;
//! * **csr**     — the same engine searched through its flat CSR mirror:
//!   integer-scaled bucket-heap Dijkstra with warm Johnson potentials
//!   carried across requests.
//!
//! Instances use quarter-integer link costs and free conversions so the
//! integer certificate holds on every request (same topology distribution
//! and cost magnitudes as the continuous generator — tiers stay
//! comparable with earlier baselines).
//!
//! Writes the machine-readable results to `BENCH_aux_engine.json` in the
//! working directory (the committed artifact lives at the repo root).

use rand::Rng;
use wdm_bench::{dyadic_connected_instance, rng, timed, Table};
use wdm_core::aux_engine::AuxEngine;
use wdm_core::aux_graph::{AuxGraph, AuxSpec};
use wdm_core::network::{ResidualState, WdmNetwork};
use wdm_core::wavelength::Wavelength;
use wdm_graph::suurballe::edge_disjoint_pair;
use wdm_graph::{EdgeId, NodeId, SearchArena};

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct SizeResult {
    name: String,
    nodes: usize,
    links: usize,
    wavelengths: usize,
    requests: usize,
    scratch_ns_per_req: f64,
    engine_ns_per_req: f64,
    csr_ns_per_req: f64,
    /// scratch / engine — the PR-5 baseline ratio.
    speedup: f64,
    /// scratch / csr.
    csr_speedup: f64,
    /// engine / csr — the CSR tentpole's gain over the pointer engine.
    csr_vs_engine: f64,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    bench: String,
    unit: String,
    sizes: Vec<SizeResult>,
}

/// Deterministic stationary churn: toggles scripted channels so the load
/// hovers around half the script (same scheme as the Criterion bench).
struct Churn {
    ops: Vec<(EdgeId, Wavelength)>,
    i: usize,
}

impl Churn {
    fn new(net: &WdmNetwork, count: usize, seed: u64) -> Self {
        let mut r = rng(seed);
        let ops = (0..count)
            .map(|_| {
                let e = EdgeId::from(r.gen_range(0..net.link_count()));
                let lambda = net.lambda(e);
                let nth = r.gen_range(0..lambda.count());
                (e, lambda.iter().nth(nth).expect("non-empty"))
            })
            .collect();
        Self { ops, i: 0 }
    }

    fn step(&mut self, net: &WdmNetwork, st: &mut ResidualState) {
        for _ in 0..2 {
            let (e, l) = self.ops[self.i % self.ops.len()];
            self.i += 1;
            if st.used(e).contains(l) {
                let _ = st.release(e, l);
            } else {
                let _ = st.occupy(net, e, l);
            }
        }
    }
}

fn requests(net: &WdmNetwork, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut r = rng(seed);
    (0..count)
        .map(|_| loop {
            let s = r.gen_range(0..net.node_count()) as u32;
            let t = r.gen_range(0..net.node_count()) as u32;
            if s != t {
                return (NodeId(s), NodeId(t));
            }
        })
        .collect()
}

/// One scratch-pipeline pass over the stream: (routes found, seconds).
fn scratch_pass(net: &WdmNetwork, stream: &[(NodeId, NodeId)], seed: u64) -> (usize, f64) {
    let mut st = ResidualState::fresh(net);
    let mut churn = Churn::new(net, 256, seed ^ 2);
    let mut found = 0usize;
    let (_, secs) = timed(|| {
        for &(s, t) in stream {
            churn.step(net, &mut st);
            let aux = AuxGraph::build(net, &st, s, t, AuxSpec::g_prime());
            if edge_disjoint_pair(&aux.graph, aux.source, aux.sink, |e| aux.weight(e)).is_some() {
                found += 1;
            }
        }
    });
    (found, secs)
}

/// One engine-pipeline pass over the identical stream (fresh engine, so the
/// skeleton build is charged to the pass, as in production start-up).
fn engine_pass(net: &WdmNetwork, stream: &[(NodeId, NodeId)], seed: u64) -> (usize, f64) {
    let mut st = ResidualState::fresh(net);
    let mut churn = Churn::new(net, 256, seed ^ 2);
    let mut eng = AuxEngine::new(net, AuxSpec::g_prime());
    let mut arena = SearchArena::new();
    let mut found = 0usize;
    let (_, secs) = timed(|| {
        for &(s, t) in stream {
            churn.step(net, &mut st);
            eng.sync(net, &st, s, t);
            let eng = &eng;
            if arena
                .edge_disjoint_pair(
                    eng.graph(),
                    eng.source(),
                    eng.sink(),
                    |e| eng.weight(e),
                    |e| eng.enabled(e),
                )
                .is_some()
            {
                found += 1;
            }
        }
    });
    (found, secs)
}

/// One CSR-pipeline pass: persistent engine synced per request, searched
/// through the flat CSR mirror — integer bucket-heap Dijkstra with warm
/// Johnson potentials when the dyadic certificate holds (always, on these
/// instances), f64 flat fallback otherwise.
fn csr_pass(net: &WdmNetwork, stream: &[(NodeId, NodeId)], seed: u64) -> (usize, f64) {
    let mut st = ResidualState::fresh(net);
    let mut churn = Churn::new(net, 256, seed ^ 2);
    let mut eng = AuxEngine::new(net, AuxSpec::g_prime());
    eng.set_warm_potentials(true);
    let mut arena = SearchArena::new();
    let mut found = 0usize;
    let (_, secs) = timed(|| {
        for &(s, t) in stream {
            churn.step(net, &mut st);
            eng.sync(net, &st, s, t);
            eng.warm_prepare(net);
            let (aux_s, aux_t) = (eng.source(), eng.sink());
            let (view, int, pot) = eng.flat_parts();
            let pair = match int {
                Some(iw) => {
                    arena.edge_disjoint_pair_flat_int(&view, &iw, Some(pot), aux_s, aux_t, || {})
                }
                None => arena.edge_disjoint_pair_flat(&view, aux_s, aux_t, || {}),
            };
            if pair.is_some() {
                found += 1;
            }
        }
    });
    (found, secs)
}

fn measure(n: usize, d: usize, w: usize, reqs: usize, passes: usize, seed: u64) -> SizeResult {
    let mut r = rng(seed);
    let net = dyadic_connected_instance(&mut r, n, d, w);
    let stream = requests(&net, reqs, seed ^ 1);

    // Alternate the pipelines and keep each one's fastest pass: the minimum
    // is the run least disturbed by other tenants of the machine, so the
    // speedup ratio is stable enough for CI to gate on (a single-pass
    // measurement swings ±25 % on a busy box).
    let mut scratch_secs = f64::INFINITY;
    let mut engine_secs = f64::INFINITY;
    let mut csr_secs = f64::INFINITY;
    for _ in 0..passes {
        let (found_scratch, ss) = scratch_pass(&net, &stream, seed);
        let (found_engine, es) = engine_pass(&net, &stream, seed);
        let (found_csr, cs) = csr_pass(&net, &stream, seed);
        assert_eq!(
            found_scratch, found_engine,
            "the scratch and engine pipelines must route identically"
        );
        assert_eq!(
            found_scratch, found_csr,
            "the CSR pipeline must route identically"
        );
        scratch_secs = scratch_secs.min(ss);
        engine_secs = engine_secs.min(es);
        csr_secs = csr_secs.min(cs);
    }

    let scratch_ns = scratch_secs / reqs as f64 * 1e9;
    let engine_ns = engine_secs / reqs as f64 * 1e9;
    let csr_ns = csr_secs / reqs as f64 * 1e9;
    SizeResult {
        name: format!("n{n}_d{d}_w{w}"),
        nodes: n,
        links: net.link_count(),
        wavelengths: w,
        requests: reqs,
        scratch_ns_per_req: scratch_ns,
        engine_ns_per_req: engine_ns,
        csr_ns_per_req: csr_ns,
        speedup: scratch_ns / engine_ns,
        csr_speedup: scratch_ns / csr_ns,
        csr_vs_engine: engine_ns / csr_ns,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (reqs, passes) = if quick { (200, 3) } else { (2000, 5) };

    println!("aux-engine — scratch rebuild vs pointer engine vs CSR engine (ns/request)\n");
    let mut table = Table::new(&[
        "size",
        "m",
        "W",
        "scratch ns",
        "engine ns",
        "csr ns",
        "eng speedup",
        "csr speedup",
        "csr/eng",
    ]);
    let mut sizes = Vec::new();
    for &(n, d, w) in &[(50usize, 4usize, 8usize), (100, 4, 8), (200, 4, 8)] {
        let res = measure(n, d, w, reqs, passes, 0xA0 + n as u64);
        table.row(vec![
            res.name.clone(),
            res.links.to_string(),
            res.wavelengths.to_string(),
            format!("{:.0}", res.scratch_ns_per_req),
            format!("{:.0}", res.engine_ns_per_req),
            format!("{:.0}", res.csr_ns_per_req),
            format!("{:.2}x", res.speedup),
            format!("{:.2}x", res.csr_speedup),
            format!("{:.2}x", res.csr_vs_engine),
        ]);
        sizes.push(res);
    }
    table.print();

    let report = BenchReport {
        bench: String::from("aux_engine"),
        unit: String::from("ns_per_request"),
        sizes,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_aux_engine.json", &json).expect("write BENCH_aux_engine.json");
    println!("\nwrote BENCH_aux_engine.json");
}
