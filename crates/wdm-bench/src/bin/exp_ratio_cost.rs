//! Experiment T2 — Theorem 2: the §3.3 approximation is within 2× of the
//! exact optimum when the conversion-cost premise holds.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_ratio_cost
//! ```
//!
//! Output: one row per (n, W, premise) population with the distribution of
//! `approx / exact` over feasible random instances. The exact optimum comes
//! from exhaustive simple-path-pair enumeration, cross-checked against the
//! ILP on a subsample.

use rayon::prelude::*;
use wdm_bench::{random_instance, rng, summarize, InstanceParams, Table};
use wdm_core::disjoint::RobustRouteFinder;
use wdm_core::exact::{exhaustive_best_pair, ilp_best_pair};
use wdm_graph::NodeId;

fn main() {
    let instances_per_cell = 120usize;
    let mut table = Table::new(&[
        "n", "W", "premise", "feasible", "mean", "p95", "max", "bound ok",
    ]);
    let mut ilp_checked = 0usize;
    let mut worst_overall: f64 = 0.0;

    for &premise in &[true, false] {
        for &(n, w) in &[(5usize, 2usize), (6, 3), (8, 3), (9, 4)] {
            let params = InstanceParams {
                n,
                w,
                link_p: 0.4,
                lambda_p: 0.7,
                preload: 0.1,
                premise,
            };
            let results: Vec<Option<f64>> = (0..instances_per_cell)
                .into_par_iter()
                .map(|i| {
                    let mut r = rng(1_000_000 * n as u64
                        + 1000 * w as u64
                        + i as u64
                        + if premise { 0 } else { 7_777_777 });
                    let (net, state) = random_instance(&mut r, params);
                    let s = NodeId(0);
                    let t = NodeId(n as u32 - 1);
                    let approx = RobustRouteFinder::new(&net).find(&state, s, t).ok()?;
                    let (exact, stats) = exhaustive_best_pair(&net, &state, s, t, 100_000);
                    assert!(!stats.truncated, "raise the enumeration cap");
                    let exact = exact.expect("aux-graph reduction is feasibility-complete");
                    Some(approx.total_cost() / exact.total_cost())
                })
                .collect();
            let ratios: Vec<f64> = results.into_iter().flatten().collect();
            let s = summarize(&ratios);
            let bound_ok = if premise {
                if s.max <= 2.0 + 1e-9 {
                    "yes"
                } else {
                    "VIOLATED"
                }
            } else {
                "n/a"
            };
            if premise {
                worst_overall = worst_overall.max(s.max);
            }
            table.row(vec![
                n.to_string(),
                w.to_string(),
                premise.to_string(),
                format!("{}/{}", s.n, instances_per_cell),
                format!("{:.4}", s.mean),
                format!("{:.4}", s.p95),
                format!("{:.4}", s.max),
                bound_ok.to_string(),
            ]);
        }
    }

    // ILP cross-check on a small subsample (n = 5, W = 2).
    let mut r = rng(424242);
    for _ in 0..15 {
        let (net, state) = random_instance(
            &mut r,
            InstanceParams {
                n: 5,
                w: 2,
                ..Default::default()
            },
        );
        let s = NodeId(0);
        let t = NodeId(4);
        let (ex, _) = exhaustive_best_pair(&net, &state, s, t, 100_000);
        let (ilp, _) =
            ilp_best_pair(&net, &state, s, t, &Default::default()).expect("not degenerate");
        match (ex, ilp) {
            (Some(a), Some(b)) => {
                assert!(
                    (a.total_cost() - b.total_cost()).abs() < 1e-5,
                    "ILP and exhaustive disagree"
                );
                ilp_checked += 1;
            }
            (None, None) => {}
            _ => panic!("ILP and exhaustive disagree on feasibility"),
        }
    }

    println!("T2 — Theorem 2 approximation ratio (approx / exact):\n");
    table.print();
    println!("\nworst premise-satisfying ratio observed: {worst_overall:.4} (bound: 2.0)");
    println!("ILP cross-check agreed on {ilp_checked} feasible subsample instances");
}
