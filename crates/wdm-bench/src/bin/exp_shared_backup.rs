//! Extension experiment — shared vs dedicated backup protection: how many
//! channels does 1:N backup sharing save under the paper's
//! single-link-failure model?
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_shared_backup
//! ```

use rand::{Rng, SeedableRng};
use wdm_bench::Table;
use wdm_core::network::NetworkBuilder;
use wdm_graph::NodeId;
use wdm_sim::shared::SharedProvisioner;

fn main() {
    println!("Shared vs dedicated backup protection (single-link-failure model)\n");
    let mut table = Table::new(&[
        "topology",
        "W",
        "conns",
        "dedicated ch.",
        "shared ch.",
        "savings",
        "shared-hop ratio",
    ]);
    let topologies: Vec<(&str, wdm_core::network::WdmNetwork)> = vec![
        ("NSFNET", NetworkBuilder::nsfnet(16).build()),
        ("ARPANET-like", {
            let topo = wdm_graph::topology::arpanet_like();
            NetworkBuilder::from_topology(
                &topo,
                16,
                wdm_core::conversion::ConversionTable::Full { cost: 3.0 },
                0.01,
            )
            .build()
        }),
    ];
    for (name, net) in &topologies {
        for &target in &[20usize, 50] {
            let mut p = SharedProvisioner::new(net);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
            let n = net.node_count();
            let mut provisioned = 0usize;
            let mut shared_hops = 0usize;
            let mut backup_hops = 0usize;
            let mut attempts = 0usize;
            while provisioned < target && attempts < target * 10 {
                attempts += 1;
                let s = rng.gen_range(0..n as u32);
                let mut t = rng.gen_range(0..n as u32);
                if s == t {
                    t = (t + 1) % n as u32;
                }
                if let Ok(c) = p.provision(NodeId(s), NodeId(t)) {
                    provisioned += 1;
                    shared_hops += c.shared_hops;
                    backup_hops += c.backup.len();
                }
            }
            let dedicated = p.dedicated_equivalent();
            let shared = p.channels_in_use();
            table.row(vec![
                name.to_string(),
                "16".into(),
                provisioned.to_string(),
                dedicated.to_string(),
                shared.to_string(),
                format!("{:.1}%", (1.0 - shared as f64 / dedicated as f64) * 100.0),
                format!("{:.2}", shared_hops as f64 / backup_hops.max(1) as f64),
            ]);
        }
    }
    table.print();
    println!("\n'savings' = channels avoided relative to dedicated 1+1");
    println!("protection. Sharing is legal between connections whose primaries");
    println!("are edge-disjoint (they can never fail together under the");
    println!("paper's single-link-failure model).");
}
