//! Experiments C1 + C3 — the paper's headline systems claims under dynamic
//! traffic: joint load+cost routing (§4.2) vs cost-only (§3.3) and the
//! baselines, measured on blocking probability, route cost, link-load
//! distribution and reconfiguration counts.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_dynamic_sim [--quick] \
//!     [--telemetry json|summary]
//! ```

use std::collections::BTreeMap;
use wdm_bench::{emit_policy_telemetry, telemetry_mode, Table};
use wdm_core::network::{NetworkBuilder, WdmNetwork};
use wdm_sim::metrics::{mean_std, Metrics, PolicyTelemetry};
use wdm_sim::parallel::{replication_seeds, run_replications, run_replications_telemetry};
use wdm_sim::policy::Policy;
use wdm_sim::sim::SimConfig;
use wdm_sim::traffic::TrafficModel;

fn policies() -> Vec<Policy> {
    vec![
        Policy::CostOnly,
        Policy::LoadOnly {
            a: std::f64::consts::E,
        },
        Policy::Joint {
            a: std::f64::consts::E,
        },
        Policy::TwoStep,
        Policy::Unrefined,
        Policy::PrimaryOnly,
    ]
}

fn run_grid(
    net: &WdmNetwork,
    name: &str,
    seed_base: u64,
    erlangs: &[f64],
    duration: f64,
    reps: usize,
    mut telemetry: Option<&mut BTreeMap<String, PolicyTelemetry>>,
) {
    println!("\n== {name}: blocking / cost / load (C1, C3) ==");
    // Replication seeds are derived from a per-grid base with splitmix64 —
    // the same scheme `wdm simulate --reps` uses — so no grid shares a
    // stream with another and reruns are reproducible by (base, index).
    let seeds = replication_seeds(seed_base, reps);
    let mut table = Table::new(&[
        "erlangs",
        "policy",
        "blocking %",
        "mean cost",
        "mean ρ",
        "peak ρ",
        "p90 ρ(final)",
        "reconfigs",
    ]);
    for &erl in erlangs {
        for policy in policies() {
            let cfg = SimConfig {
                policy,
                traffic: TrafficModel::new(erl / 10.0, 10.0),
                duration,
                failure_rate: 0.0,
                mean_repair: 1.0,
                reconfig_threshold: Some(0.9),
                seed: 0,
                switchover_time: 0.001,
                setup_time_per_hop: 0.05,
            };
            let runs = match telemetry.as_deref_mut() {
                Some(agg) => {
                    let (runs, snap) = run_replications_telemetry(net, cfg, &seeds);
                    agg.entry(policy.name().to_string())
                        .or_insert_with(|| PolicyTelemetry::new(policy.name()))
                        .merge(&PolicyTelemetry {
                            policy: policy.name().to_string(),
                            replications: seeds.len() as u64,
                            snapshot: snap,
                        });
                    runs
                }
                None => run_replications(net, cfg, &seeds),
            };
            let stat = |f: &dyn Fn(&Metrics) -> f64| {
                let vals: Vec<f64> = runs.iter().map(f).collect();
                mean_std(&vals)
            };
            let (bp, bp_sd) = stat(&|m| m.blocking_probability() * 100.0);
            let (cost, _) = stat(&|m| m.mean_route_cost());
            let (mload, _) = stat(&|m| m.mean_network_load());
            let (pload, _) = stat(&|m| m.peak_network_load);
            let (p90, _) = stat(&|m| m.final_snapshot.as_ref().map_or(0.0, |s| s.p90));
            let reconfigs: u64 = runs.iter().map(|m| m.reconfig_events).sum();
            table.row(vec![
                format!("{erl:.0}"),
                policy.name().into(),
                format!("{bp:.2}±{bp_sd:.2}"),
                format!("{cost:.1}"),
                format!("{mload:.3}"),
                format!("{pload:.3}"),
                format!("{p90:.3}"),
                reconfigs.to_string(),
            ]);
        }
    }
    table.print();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (duration, reps) = if quick { (300.0, 3) } else { (800.0, 4) };
    let mode = match telemetry_mode() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut agg: BTreeMap<String, PolicyTelemetry> = BTreeMap::new();

    let nsfnet = NetworkBuilder::nsfnet(16).build();
    run_grid(
        &nsfnet,
        "NSFNET (14 nodes, W = 16)",
        0xC1_01,
        &[40.0, 80.0, 120.0],
        duration,
        reps,
        mode.map(|_| &mut agg),
    );

    let topo = wdm_graph::topology::arpanet_like();
    let arpanet = NetworkBuilder::from_topology(
        &topo,
        16,
        wdm_core::conversion::ConversionTable::Full { cost: 3.0 },
        0.01,
    )
    .build();
    run_grid(
        &arpanet,
        "ARPANET-like (20 nodes, W = 16)",
        0xC1_02,
        &[40.0, 80.0],
        duration,
        reps,
        mode.map(|_| &mut agg),
    );

    if let Some(mode) = mode {
        if let Err(e) = emit_policy_telemetry("exp_dynamic_sim", mode, &agg) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }

    println!("\nExpected shape (paper's C1/C3): the joint policy pays a small");
    println!("route-cost premium over cost-only but keeps mean/peak load and");
    println!("the p90 link load lower, triggering fewer reconfigurations and");
    println!("blocking less at high Erlang loads. Two-step blocks most (it");
    println!("fails on trap instances); primary-only blocks least but offers");
    println!("no protection (see exp_failure_recovery).");
}
