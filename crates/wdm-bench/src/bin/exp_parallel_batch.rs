//! Experiment — speculative parallel batch provisioning vs the serial loop.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_parallel_batch            # full
//! cargo run --release -p wdm-bench --bin exp_parallel_batch -- --quick # smoke
//! ```
//!
//! Provisions the same demand batch on an m≈800-link, W=8 instance two
//! ways and reports ns/demand:
//!
//! * **serial** — [`provision_batch`], the pre-engine baseline: one
//!   throwaway router context (a full auxiliary-graph construction) per
//!   demand;
//! * **speculative(K)** — [`provision_batch_speculative`] at window sizes
//!   K ∈ {1, 2, 8, 64}: persistent forked router contexts, per-round
//!   snapshots, in-order conflict-checked commit.
//!
//! Every speculative pass is asserted bit-identical to the serial outcome
//! (the engine's contract), so the speedup is measured on provably equal
//! work. On a single-core host the gain is the engine reuse; with more
//! cores the window also routes concurrently.
//!
//! Writes the machine-readable results to `BENCH_parallel_batch.json` in
//! the working directory (the committed artifact lives at the repo root);
//! CI gates on the `window 8` speedup via `wdm telemetry diff`.

use rand::Rng;
use wdm_bench::{rng, timed, Table};
use wdm_core::conversion::ConversionTable;
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_sim::batch::{provision_batch, BatchOrder, BatchOutcome, Demand};
use wdm_sim::policy::Policy;
use wdm_sim::speculative::{distinct_static_costs, provision_batch_speculative, SpeculationStats};
use wdm_telemetry::NoopRecorder;

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct WindowResult {
    window: usize,
    ns_per_demand: f64,
    speedup: f64,
    rounds: u64,
    abort_rate: f64,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    bench: String,
    unit: String,
    nodes: usize,
    links: usize,
    wavelengths: usize,
    demands: usize,
    serial_ns_per_demand: f64,
    windows: Vec<WindowResult>,
}

/// A connected instance whose directed links carry pairwise-distinct
/// uniform costs (cost rank k lands in (k, k+1)), so commit rule 2's
/// guard holds: a bidirected ring plus random chords up to the requested
/// average degree.
fn distinct_cost_instance(rng: &mut impl Rng, n: usize, avg_degree: usize, w: usize) -> WdmNetwork {
    let mut b = NetworkBuilder::new(w);
    let nodes: Vec<_> = (0..n)
        .map(|_| b.add_node(ConversionTable::Full { cost: 0.5 }))
        .collect();
    let mut k = 0.0f64;
    let mut next_cost = move |u: f64| {
        let c = k + u;
        k += 1.0;
        c
    };
    for i in 0..n {
        let j = (i + 1) % n;
        let c = next_cost(rng.gen_range(0.05..0.95));
        b.add_link(nodes[i], nodes[j], c);
        let c = next_cost(rng.gen_range(0.05..0.95));
        b.add_link(nodes[j], nodes[i], c);
    }
    let chords = n * avg_degree - 2 * n; // directed links beyond the ring
    let mut added = 0;
    while added < chords {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            let c = next_cost(rng.gen_range(0.05..0.95));
            b.add_link(nodes[i], nodes[j], c);
            added += 1;
        }
    }
    b.build()
}

fn assert_outcomes_identical(serial: &BatchOutcome, spec: &BatchOutcome, window: usize) {
    assert_eq!(serial.provisioned, spec.provisioned, "window {window}");
    assert_eq!(serial.rejected, spec.rejected, "window {window}");
    assert_eq!(
        serial.total_cost.to_bits(),
        spec.total_cost.to_bits(),
        "window {window}"
    );
    assert_eq!(serial.state, spec.state, "window {window}");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, demand_count, passes) = if quick { (60, 150, 2) } else { (200, 1000, 3) };
    let (d, w) = (4usize, 8usize);
    const WINDOWS: [usize; 4] = [1, 2, 8, 64];

    let mut r = rng(0xBA7C4);
    let net = distinct_cost_instance(&mut r, n, d, w);
    assert!(
        distinct_static_costs(&net),
        "instance must satisfy the rule 2 guard (distinct uniform costs)"
    );
    let state = ResidualState::fresh(&net);
    let demands: Vec<Demand> = {
        let mut rr = rng(0xBA7C5);
        (0..demand_count)
            .map(|_| loop {
                let s = rr.gen_range(0..n as u32);
                let t = rr.gen_range(0..n as u32);
                if s != t {
                    return Demand::new(s, t);
                }
            })
            .collect()
    };
    let policy = Policy::CostOnly;
    let order = BatchOrder::AsGiven;

    println!(
        "parallel-batch — speculative windows vs serial loop \
         (n={n}, m={}, W={w}, {demand_count} demands, CostOnly)\n",
        net.link_count()
    );

    // Untimed reference run: warms the caches and pins the outcome every
    // timed pass must reproduce bit-identically.
    let reference = provision_batch(&net, &state, &demands, policy, order);

    // Alternate serial and speculative passes and keep each configuration's
    // fastest pass: the minimum is the run least disturbed by other tenants
    // of the machine, so the speedup ratio is stable enough for CI to gate
    // on (a single-pass measurement swings ±25 % on a busy box).
    let mut serial_secs = f64::INFINITY;
    let mut window_secs = [f64::INFINITY; WINDOWS.len()];
    let mut window_stats = [SpeculationStats::default(); WINDOWS.len()];
    for _ in 0..passes {
        let (out, secs) = timed(|| provision_batch(&net, &state, &demands, policy, order));
        assert_outcomes_identical(&reference, &out, 0);
        serial_secs = serial_secs.min(secs);
        for (slot, &window) in WINDOWS.iter().enumerate() {
            let ((out, stats), secs) = timed(|| {
                provision_batch_speculative(
                    &net,
                    &state,
                    &demands,
                    policy,
                    order,
                    window,
                    NoopRecorder,
                )
            });
            assert_outcomes_identical(&reference, &out, window);
            window_secs[slot] = window_secs[slot].min(secs);
            window_stats[slot] = stats;
        }
    }

    let serial_ns = serial_secs / demand_count as f64 * 1e9;
    let mut table = Table::new(&["config", "ns/demand", "speedup", "rounds", "abort rate"]);
    table.row(vec![
        String::from("serial"),
        format!("{serial_ns:.0}"),
        String::from("1.00x"),
        String::from("-"),
        String::from("-"),
    ]);
    let mut windows = Vec::new();
    for ((&window, &secs), stats) in WINDOWS.iter().zip(&window_secs).zip(&window_stats) {
        let ns = secs / demand_count as f64 * 1e9;
        let res = WindowResult {
            window,
            ns_per_demand: ns,
            speedup: serial_ns / ns,
            rounds: stats.rounds,
            abort_rate: stats.abort_rate(),
        };
        table.row(vec![
            format!("speculative K={window}"),
            format!("{:.0}", res.ns_per_demand),
            format!("{:.2}x", res.speedup),
            res.rounds.to_string(),
            format!("{:.1}%", res.abort_rate * 100.0),
        ]);
        windows.push(res);
    }
    table.print();

    let report = BenchReport {
        bench: String::from("parallel_batch"),
        unit: String::from("ns_per_demand"),
        nodes: n,
        links: net.link_count(),
        wavelengths: w,
        demands: demand_count,
        serial_ns_per_demand: serial_ns,
        windows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_parallel_batch.json", &json).expect("write BENCH_parallel_batch.json");
    println!("\nwrote BENCH_parallel_batch.json");
}
