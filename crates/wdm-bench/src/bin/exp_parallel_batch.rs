//! Experiment — speculative parallel batch provisioning vs the serial loop.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_parallel_batch            # full
//! cargo run --release -p wdm-bench --bin exp_parallel_batch -- --quick # smoke
//! ```
//!
//! Provisions the same demand batch on an m≈800-link, W=8 instance three
//! ways and reports ns/demand:
//!
//! * **serial** — [`provision_batch`], the pre-engine baseline: one
//!   throwaway router context (a full auxiliary-graph construction) per
//!   demand;
//! * **conflict-groups(K)** — the conflict-aware scheduler at window
//!   sizes K ∈ {1, 2, 8, 64}: footprint-predicted link-disjoint groups,
//!   inline serial routing for predicted conflicts, bounded retry on
//!   mispredictions;
//! * **windowed(K)** — the PR 3 abort-the-rest engine at the same K, kept
//!   as the before/after reference for the contention-collapse curve
//!   (EXPERIMENTS.md A8).
//!
//! Every speculative pass is asserted bit-identical to the serial outcome
//! (the engine's contract), so the speedup is measured on provably equal
//! work. On a single-core host the gain is the engine reuse; with more
//! cores the group also routes concurrently.
//!
//! Timed passes run unrecorded; a separate untimed instrumented pass per
//! configuration collects the abort-cause counters and the
//! conflict-group-size histogram into the report.
//!
//! Writes the machine-readable results to `BENCH_parallel_batch.json` in
//! the working directory (the committed artifact lives at the repo root).
//! CI gates the K=8 speedup via `wdm telemetry diff` and the K=64
//! scaling (`k64_vs_k8_speedup`, K=64 abort rate) via `wdm telemetry
//! assert`.

use rand::Rng;
use wdm_bench::{rng, timed, Table};
use wdm_core::conversion::ConversionTable;
use wdm_core::journal::NoopSink;
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_sim::batch::{provision_batch, BatchOrder, BatchOutcome, Demand};
use wdm_sim::policy::Policy;
use wdm_sim::schedule::ScheduleMode;
use wdm_sim::speculative::{
    distinct_static_costs, provision_batch_speculative_scheduled, SpeculationStats,
};
use wdm_telemetry::{NoopRecorder, NoopTracer, TelemetrySink};

#[derive(Debug, Default, Clone, Copy, serde::Serialize, serde::Deserialize)]
struct AbortCauses {
    conflict: u64,
    ordering: u64,
    load_shift: u64,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct WindowResult {
    window: usize,
    ns_per_demand: f64,
    speedup: f64,
    rounds: u64,
    abort_rate: f64,
    retries: u64,
    inline_routes: u64,
    abort_causes: AbortCauses,
    group_size_mean: f64,
    group_size_max: u64,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    bench: String,
    unit: String,
    nodes: usize,
    links: usize,
    wavelengths: usize,
    demands: usize,
    serial_ns_per_demand: f64,
    /// Conflict-groups scheduling — the headline numbers CI gates on.
    windows: Vec<WindowResult>,
    /// The PR 3 windowed engine on the same instance: the "before" curve.
    /// (Named so the gate filter `windows.` cannot match it.)
    windowed_reference: Vec<WindowResult>,
    /// Scaling headroom: speedup(K=64) / speedup(K=8) under
    /// conflict-groups. Near-monotone scaling keeps this near (or above)
    /// 1.0; the old windowed engine collapsed to 0.13.
    k64_vs_k8_speedup: f64,
}

/// A connected instance whose directed links carry pairwise-distinct
/// uniform costs (cost rank k lands in (k, k+1)), so commit rule 2's
/// guard holds: a bidirected ring plus random chords up to the requested
/// average degree.
fn distinct_cost_instance(rng: &mut impl Rng, n: usize, avg_degree: usize, w: usize) -> WdmNetwork {
    let mut b = NetworkBuilder::new(w);
    let nodes: Vec<_> = (0..n)
        .map(|_| b.add_node(ConversionTable::Full { cost: 0.5 }))
        .collect();
    let mut k = 0.0f64;
    let mut next_cost = move |u: f64| {
        let c = k + u;
        k += 1.0;
        c
    };
    for i in 0..n {
        let j = (i + 1) % n;
        let c = next_cost(rng.gen_range(0.05..0.95));
        b.add_link(nodes[i], nodes[j], c);
        let c = next_cost(rng.gen_range(0.05..0.95));
        b.add_link(nodes[j], nodes[i], c);
    }
    let chords = n * avg_degree - 2 * n; // directed links beyond the ring
    let mut added = 0;
    while added < chords {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            let c = next_cost(rng.gen_range(0.05..0.95));
            b.add_link(nodes[i], nodes[j], c);
            added += 1;
        }
    }
    b.build()
}

fn assert_outcomes_identical(serial: &BatchOutcome, spec: &BatchOutcome, window: usize) {
    assert_eq!(serial.provisioned, spec.provisioned, "window {window}");
    assert_eq!(serial.rejected, spec.rejected, "window {window}");
    assert_eq!(
        serial.total_cost.to_bits(),
        spec.total_cost.to_bits(),
        "window {window}"
    );
    assert_eq!(serial.state, spec.state, "window {window}");
}

const WINDOWS: [usize; 4] = [1, 2, 8, 64];

/// One mode's full sweep: timed min-of-`passes` ns/demand per window
/// (unrecorded), plus one untimed instrumented pass for the counters and
/// the group-size histogram.
#[allow(clippy::too_many_arguments)]
fn sweep(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    schedule: ScheduleMode,
    reference: &BatchOutcome,
    serial_ns: f64,
    passes: usize,
) -> Vec<WindowResult> {
    let mut secs_min = [f64::INFINITY; WINDOWS.len()];
    let mut stats_by_window = [SpeculationStats::default(); WINDOWS.len()];
    for _ in 0..passes {
        for (slot, &window) in WINDOWS.iter().enumerate() {
            let ((out, stats), secs) = timed(|| {
                provision_batch_speculative_scheduled(
                    net,
                    state,
                    demands,
                    policy,
                    order,
                    window,
                    schedule,
                    NoopRecorder,
                    NoopSink,
                    &NoopTracer,
                )
            });
            assert_outcomes_identical(reference, &out, window);
            secs_min[slot] = secs_min[slot].min(secs);
            stats_by_window[slot] = stats;
        }
    }

    WINDOWS
        .iter()
        .zip(&secs_min)
        .zip(&stats_by_window)
        .map(|((&window, &secs), stats)| {
            let sink = TelemetrySink::new();
            let _ = provision_batch_speculative_scheduled(
                net,
                state,
                demands,
                policy,
                order,
                window,
                schedule,
                &sink,
                NoopSink,
                &NoopTracer,
            );
            let snap = sink.snapshot();
            // Absent entries mean "never recorded": windowed mode has no
            // group histogram, and either mode may simply not abort.
            let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
            let grp = snap.histograms.get("conflict_group_size");
            let ns = secs / demands.len() as f64 * 1e9;
            WindowResult {
                window,
                ns_per_demand: ns,
                speedup: serial_ns / ns,
                rounds: stats.rounds,
                abort_rate: stats.abort_rate(),
                retries: stats.retries,
                inline_routes: stats.inline_routes,
                abort_causes: AbortCauses {
                    conflict: counter("speculative_abort_conflict"),
                    ordering: counter("speculative_abort_ordering"),
                    load_shift: counter("speculative_abort_load_shift"),
                },
                group_size_mean: grp.map_or(0.0, |g| if g.count > 0 { g.mean() } else { 0.0 }),
                group_size_max: grp.map_or(0, |g| g.max),
            }
        })
        .collect()
}

fn print_mode(table: &mut Table, label: &str, results: &[WindowResult]) {
    for res in results {
        table.row(vec![
            format!("{label} K={}", res.window),
            format!("{:.0}", res.ns_per_demand),
            format!("{:.2}x", res.speedup),
            res.rounds.to_string(),
            format!("{:.1}%", res.abort_rate * 100.0),
            res.inline_routes.to_string(),
            format!("{:.1}", res.group_size_mean),
        ]);
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, demand_count, passes) = if quick { (60, 150, 2) } else { (200, 1000, 3) };
    let (d, w) = (4usize, 8usize);

    let mut r = rng(0xBA7C4);
    let net = distinct_cost_instance(&mut r, n, d, w);
    assert!(
        distinct_static_costs(&net),
        "instance must satisfy the rule 2 guard (distinct uniform costs)"
    );
    let state = ResidualState::fresh(&net);
    let demands: Vec<Demand> = {
        let mut rr = rng(0xBA7C5);
        (0..demand_count)
            .map(|_| loop {
                let s = rr.gen_range(0..n as u32);
                let t = rr.gen_range(0..n as u32);
                if s != t {
                    return Demand::new(s, t);
                }
            })
            .collect()
    };
    let policy = Policy::CostOnly;
    let order = BatchOrder::AsGiven;

    println!(
        "parallel-batch — conflict-groups vs windowed speculation vs serial \
         (n={n}, m={}, W={w}, {demand_count} demands, CostOnly)\n",
        net.link_count()
    );

    // Untimed reference run: warms the caches and pins the outcome every
    // timed pass must reproduce bit-identically.
    let reference = provision_batch(&net, &state, &demands, policy, order);

    // Keep each configuration's fastest pass: the minimum is the run
    // least disturbed by other tenants of the machine, so the speedup
    // ratio is stable enough for CI to gate on (a single-pass measurement
    // swings ±25 % on a busy box).
    let mut serial_secs = f64::INFINITY;
    for _ in 0..passes {
        let (out, secs) = timed(|| provision_batch(&net, &state, &demands, policy, order));
        assert_outcomes_identical(&reference, &out, 0);
        serial_secs = serial_secs.min(secs);
    }
    let serial_ns = serial_secs / demand_count as f64 * 1e9;

    let groups = sweep(
        &net,
        &state,
        &demands,
        policy,
        order,
        ScheduleMode::ConflictGroups,
        &reference,
        serial_ns,
        passes,
    );
    let windowed = sweep(
        &net,
        &state,
        &demands,
        policy,
        order,
        ScheduleMode::Windowed,
        &reference,
        serial_ns,
        passes,
    );

    let mut table = Table::new(&[
        "config",
        "ns/demand",
        "speedup",
        "rounds",
        "abort rate",
        "inline",
        "grp mean",
    ]);
    table.row(vec![
        String::from("serial"),
        format!("{serial_ns:.0}"),
        String::from("1.00x"),
        String::from("-"),
        String::from("-"),
        String::from("-"),
        String::from("-"),
    ]);
    print_mode(&mut table, "conflict-groups", &groups);
    print_mode(&mut table, "windowed", &windowed);
    table.print();

    let speedup_at = |rs: &[WindowResult], k: usize| {
        rs.iter()
            .find(|r| r.window == k)
            .map(|r| r.speedup)
            .expect("window measured")
    };
    let k64_vs_k8 = speedup_at(&groups, 64) / speedup_at(&groups, 8);
    println!(
        "\nscaling: conflict-groups K=64 at {:.2} of K=8 speedup \
         (windowed reference: {:.2})",
        k64_vs_k8,
        speedup_at(&windowed, 64) / speedup_at(&windowed, 8)
    );

    let report = BenchReport {
        bench: String::from("parallel_batch"),
        unit: String::from("ns_per_demand"),
        nodes: n,
        links: net.link_count(),
        wavelengths: w,
        demands: demand_count,
        serial_ns_per_demand: serial_ns,
        windows: groups,
        windowed_reference: windowed,
        k64_vs_k8_speedup: k64_vs_k8,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_parallel_batch.json", &json).expect("write BENCH_parallel_batch.json");
    println!("wrote BENCH_parallel_batch.json");
}
