//! Experiment — speculative parallel batch provisioning vs the serial loop.
//!
//! ```sh
//! cargo run --release -p wdm-bench --bin exp_parallel_batch            # full
//! cargo run --release -p wdm-bench --bin exp_parallel_batch -- --quick # smoke
//! cargo run --release -p wdm-bench --bin exp_parallel_batch -- --threads 4
//! ```
//!
//! Provisions the same demand batch on an m≈800-link, W=8 instance three
//! ways and reports ns/demand:
//!
//! * **serial** — [`provision_batch`], the pre-engine baseline: one
//!   throwaway router context (a full auxiliary-graph construction) per
//!   demand;
//! * **conflict-groups(K)** — the conflict-aware scheduler at window
//!   sizes K ∈ {1, 2, 8, 64}: footprint-predicted link-disjoint groups,
//!   inline serial routing for predicted conflicts, bounded retry on
//!   mispredictions;
//! * **windowed(K)** — the PR 3 abort-the-rest engine at the same K, kept
//!   as the before/after reference for the contention-collapse curve
//!   (EXPERIMENTS.md A8).
//!
//! `--threads N` pins the speculative engines' worker count (default 1,
//! so the committed curves are reproducible on any host; `0` = all
//! cores).
//!
//! A second section sweeps the **sharded** engine (EXPERIMENTS.md A9):
//! an S × N grid (shards × worker threads) at K = 64 on a *locality*
//! instance of the same size — a ring with short chords, the shardable
//! shape of a geographically laid-out WAN — under a locality-biased
//! demand mix, against serial and threads-matched windowed baselines.
//! The expander-style instance above is deliberately not used there:
//! random global chords give every partition a huge cut, which is a
//! property of the topology, not the engine (the report records the
//! expander's cut ratio for reference).
//!
//! Every speculative pass is asserted bit-identical to the serial outcome
//! (the engine's contract), so the speedup is measured on provably equal
//! work. On a single-core host the gain is the engine reuse; with more
//! cores the window also routes concurrently — the sharded grid records
//! `single_core_host` so readers know which committed curves could not
//! show thread scaling.
//!
//! Timed passes run unrecorded; a separate untimed instrumented pass per
//! configuration collects the abort-cause counters and the
//! conflict-group-size histogram into the report.
//!
//! Writes the machine-readable results to `BENCH_parallel_batch.json` in
//! the working directory (the committed artifact lives at the repo root).
//! CI gates the K=8 speedup via `wdm telemetry diff`, the K=64 scaling
//! (`k64_vs_k8_speedup`, K=64 abort rate) via `wdm telemetry assert`, and
//! the sharded grid (`sharded.wallclock_speedup_n4` and friends) in the
//! `shard-parallel` job.

use rand::Rng;
use wdm_bench::{rng, timed, Table};
use wdm_core::conversion::ConversionTable;
use wdm_core::journal::NoopSink;
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_core::partition::TopologyPartition;
use wdm_core::predict::LocalityPredictor;
use wdm_sim::batch::{provision_batch, BatchOrder, BatchOutcome, Demand};
use wdm_sim::policy::Policy;
use wdm_sim::schedule::ScheduleMode;
use wdm_sim::sharded::provision_batch_sharded;
use wdm_sim::speculative::{
    link_local_revalidation_sound, provision_batch_speculative_scheduled, SpeculationStats,
};
use wdm_telemetry::{NoopRecorder, NoopTracer, TelemetrySink};

#[derive(Debug, Default, Clone, Copy, serde::Serialize, serde::Deserialize)]
struct AbortCauses {
    conflict: u64,
    ordering: u64,
    load_shift: u64,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct WindowResult {
    window: usize,
    ns_per_demand: f64,
    speedup: f64,
    rounds: u64,
    abort_rate: f64,
    retries: u64,
    inline_routes: u64,
    abort_causes: AbortCauses,
    group_size_mean: f64,
    group_size_max: u64,
}

/// One `(shards, threads, window)` cell of the sharded grid. The stats
/// fields (`cut_demand_ratio`, `abort_rate`, `rounds`, `inline_routes`)
/// are deterministic functions of the instance — they never vary with the
/// thread count or the host — so CI can gate them on any runner.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ShardedCell {
    shards: usize,
    threads: usize,
    window: usize,
    ns_per_demand: f64,
    speedup_vs_serial: f64,
    cut_demand_ratio: f64,
    abort_rate: f64,
    inline_routes: u64,
    rounds: u64,
    /// Aborts whose shard had already diverged (poisoned lineage) when
    /// the sweep reached them.
    lineage_aborts: u64,
    /// Aborts whose committed-candidate route escaped its home shard.
    escape_aborts: u64,
    /// Link-level conflicts that stayed channel-feasible on the live
    /// state and committed without a retry (no poisoning).
    verified_commits: u64,
}

/// The sharded S × N sweep on the locality instance (EXPERIMENTS.md A9).
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ShardedReport {
    nodes: usize,
    links: usize,
    wavelengths: usize,
    demands: usize,
    /// Fraction of demands drawn from the near-pair (intra-shard-biased)
    /// distribution.
    locality_fraction: f64,
    /// Worker threads the host can actually run in parallel; `true` means
    /// the committed wall-clock cells could not show thread scaling.
    single_core_host: bool,
    host_threads: usize,
    serial_ns_per_demand: f64,
    /// Threads-matched windowed baseline: K=64, N=4 on the same instance.
    windowed_n4_ns_per_demand: f64,
    cells: Vec<ShardedCell>,
    /// ns(S=4, N=1, K=64) / ns(S=4, N=4, K=64) — the multi-core
    /// wall-clock gain of the sharded engine itself. CI gates ≥ 1.8 on
    /// its 4-vCPU runners.
    wallclock_speedup_n4: f64,
    /// windowed(K=64, N=4) / sharded(S=4, N=4, K=64) — sharding must not
    /// lose to the threads-matched windowed engine.
    sharded_vs_windowed_n4: f64,
    /// speedup(S=4, N=4, K=64) / speedup(S=4, N=4, K=8): flat-or-better
    /// scaling into the contention tail.
    k64_vs_k8_speedup: f64,
    /// Demand-level cut ratio at S=4 (deterministic; Amdahl's serial
    /// fraction for the sharded engine).
    cut_demand_ratio_s4: f64,
    abort_rate_s4n4: f64,
    /// Link-level cut ratio of the S=4 partition on the locality
    /// instance…
    cut_link_ratio_s4: f64,
    /// …and on the expander instance above, for contrast: random global
    /// chords leave any 4-way partition with most links in the cut, which
    /// is why the sharded sweep runs on the locality instance.
    expander_cut_link_ratio_s4: f64,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    bench: String,
    unit: String,
    nodes: usize,
    links: usize,
    wavelengths: usize,
    demands: usize,
    /// Worker-thread count used for the windowed/conflict-groups sweeps
    /// (`--threads`, default 1 so committed curves are host-independent).
    threads: usize,
    serial_ns_per_demand: f64,
    /// Conflict-groups scheduling — the headline numbers CI gates on.
    windows: Vec<WindowResult>,
    /// The PR 3 windowed engine on the same instance: the "before" curve.
    /// (Named so the gate filter `windows.` cannot match it.)
    windowed_reference: Vec<WindowResult>,
    /// Scaling headroom: speedup(K=64) / speedup(K=8) under
    /// conflict-groups. Near-monotone scaling keeps this near (or above)
    /// 1.0; the old windowed engine collapsed to 0.13.
    k64_vs_k8_speedup: f64,
    /// The sharded engine's S × N grid on the locality instance.
    sharded: ShardedReport,
}

/// A connected instance whose directed links carry pairwise-distinct
/// uniform costs (cost rank k lands in (k, k+1)), so commit rule 2's
/// guard holds: a bidirected ring plus random chords up to the requested
/// average degree. Conversion is free — with a nonzero cost the G′
/// conversion-arc averages move with occupancy, the guard (correctly)
/// turns rule 2 off, and this bench would no longer measure the
/// revalidating engine at all.
fn distinct_cost_instance(rng: &mut impl Rng, n: usize, avg_degree: usize, w: usize) -> WdmNetwork {
    let mut b = NetworkBuilder::new(w);
    let nodes: Vec<_> = (0..n)
        .map(|_| b.add_node(ConversionTable::Full { cost: 0.0 }))
        .collect();
    let mut k = 0.0f64;
    let mut next_cost = move |u: f64| {
        let c = k + u;
        k += 1.0;
        c
    };
    for i in 0..n {
        let j = (i + 1) % n;
        let c = next_cost(rng.gen_range(0.05..0.95));
        b.add_link(nodes[i], nodes[j], c);
        let c = next_cost(rng.gen_range(0.05..0.95));
        b.add_link(nodes[j], nodes[i], c);
    }
    let chords = n * avg_degree - 2 * n; // directed links beyond the ring
    let mut added = 0;
    while added < chords {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            let c = next_cost(rng.gen_range(0.05..0.95));
            b.add_link(nodes[i], nodes[j], c);
            added += 1;
        }
    }
    b.build()
}

/// The shardable counterpart of [`distinct_cost_instance`]: a bidirected
/// ring plus *short-span* directed chords, the shape of a geographically
/// laid-out WAN where fibre follows the right-of-way. Same size (m = 4n),
/// but with two deliberate differences. Costs are pairwise distinct (the
/// rule 2 guard) yet *nearly uniform* (`1 + ε`, ε random in
/// `(1e-4, 1e-3)` — random so path-cost *sums* never tie exactly, which
/// quantised ε values would), so routing is hop-minimal and a demand's
/// route stays inside the tight corridor between its endpoints instead of
/// detouring toward whichever arc a rank ordering made cheap. And a
/// BFS-grown partition cuts only the few links straddling shard
/// boundaries instead of most of the chord set.
fn locality_instance(rng: &mut impl Rng, n: usize, w: usize) -> WdmNetwork {
    let mut b = NetworkBuilder::new(w);
    // Conversion must be *free* here, not merely cheap. The §3.3 G′
    // conversion-arc weight averages the allowed λ_a → λ_b pair costs, and
    // same-λ pairs cost 0 — so with a nonzero conversion cost the average
    // moves whenever channel occupancy reshapes the two adjacent links'
    // availability sets. Under this instance's ~1e-4 static-cost gaps such
    // shifts (up to cost/2) flip the Suurballe argmin between pairs whose
    // own links are untouched, which commit rule 2 cannot see. At cost 0
    // every pair averages to exactly 0 and the auxiliary weights are
    // link-local, making speculation bit-identical to serial again.
    let nodes: Vec<_> = (0..n)
        .map(|_| b.add_node(ConversionTable::Full { cost: 0.0 }))
        .collect();
    for i in 0..n {
        let j = (i + 1) % n;
        let c = 1.0 + rng.gen_range(1e-4..1e-3);
        b.add_link(nodes[i], nodes[j], c);
        let c = 1.0 + rng.gen_range(1e-4..1e-3);
        b.add_link(nodes[j], nodes[i], c);
    }
    // One forward and one backward span-2 chord per node keeps m = 4n,
    // matching the expander instance link-for-link, while giving every
    // demand a ring-disjoint alternate path. Spans stay minimal: a chord
    // is one hop, so the chord span bounds how far a radius-1 predictor
    // ball reaches — and with it how wide the misclassification margin
    // around each shard boundary is.
    for i in 0..n {
        let c = 1.0 + rng.gen_range(1e-4..1e-3);
        b.add_link(nodes[i], nodes[(i + 2) % n], c);
        let c = 1.0 + rng.gen_range(1e-4..1e-3);
        b.add_link(nodes[i], nodes[(i + n - 2) % n], c);
    }
    b.build()
}

/// Fraction of demands drawn near their source; the rest are mid-haul
/// pairs (the cross-shard background traffic that lands on the inline
/// path).
const LOCALITY_FRACTION: f64 = 0.95;
/// Near demands sit within this ring distance of their source — small
/// against the ~n/S nodes of one shard, so most of them classify
/// intra-shard.
const NEAR_SPAN: usize = 4;
/// Far demands span this ring-distance band: long enough to cross shard
/// boundaries, short enough that each inline route costs a bounded
/// multiple of a near route (the inline path is the engine's Amdahl
/// bottleneck, so its per-demand cost matters as much as its count).
const FAR_SPAN: std::ops::RangeInclusive<usize> = 10..=16;

/// A locality-biased demand mix: `LOCALITY_FRACTION` of pairs within
/// `NEAR_SPAN` ring hops (either direction), the rest in the `FAR_SPAN`
/// band — sorted short-spans-first (stable, so same-span demands keep
/// their arrival order). The sort is the workload's arrival discipline,
/// not an engine feature: interleaving long-haul demands into every round
/// would let each one stamp foreign links across a shard's interior and
/// poison that shard's whole round, so batching them into their own tail
/// rounds is how an operator would schedule this mix anyway.
fn locality_demands(rng: &mut impl Rng, n: usize, count: usize) -> Vec<Demand> {
    let mut demands: Vec<Demand> = (0..count)
        .map(|_| {
            let s = rng.gen_range(0..n);
            let off = if rng.gen_bool(LOCALITY_FRACTION) {
                rng.gen_range(1..=NEAR_SPAN)
            } else {
                rng.gen_range(FAR_SPAN)
            };
            let t = if rng.gen_bool(0.5) {
                (s + off) % n
            } else {
                (s + n - off) % n
            };
            Demand::new(s as u32, t as u32)
        })
        .collect();
    let ring_span = |d: &Demand| {
        let fwd = (d.dst.0 + n as u32 - d.src.0) % n as u32;
        fwd.min(n as u32 - fwd)
    };
    demands.sort_by_key(ring_span);
    demands
}

fn assert_outcomes_identical(serial: &BatchOutcome, spec: &BatchOutcome, window: usize) {
    assert_eq!(serial.provisioned, spec.provisioned, "window {window}");
    assert_eq!(serial.rejected, spec.rejected, "window {window}");
    assert_eq!(
        serial.total_cost.to_bits(),
        spec.total_cost.to_bits(),
        "window {window}"
    );
    assert_eq!(serial.state, spec.state, "window {window}");
}

const WINDOWS: [usize; 4] = [1, 2, 8, 64];

/// One mode's full sweep: timed min-of-`passes` ns/demand per window
/// (unrecorded), plus one untimed instrumented pass for the counters and
/// the group-size histogram.
#[allow(clippy::too_many_arguments)]
fn sweep(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    schedule: ScheduleMode,
    threads: usize,
    reference: &BatchOutcome,
    serial_ns: f64,
    passes: usize,
) -> Vec<WindowResult> {
    let mut secs_min = [f64::INFINITY; WINDOWS.len()];
    let mut stats_by_window = [SpeculationStats::default(); WINDOWS.len()];
    for _ in 0..passes {
        for (slot, &window) in WINDOWS.iter().enumerate() {
            let ((out, stats), secs) = timed(|| {
                provision_batch_speculative_scheduled(
                    net,
                    state,
                    demands,
                    policy,
                    order,
                    window,
                    schedule,
                    threads,
                    NoopRecorder,
                    NoopSink,
                    &NoopTracer,
                )
            });
            assert_outcomes_identical(reference, &out, window);
            secs_min[slot] = secs_min[slot].min(secs);
            stats_by_window[slot] = stats;
        }
    }

    WINDOWS
        .iter()
        .zip(&secs_min)
        .zip(&stats_by_window)
        .map(|((&window, &secs), stats)| {
            let sink = TelemetrySink::new();
            let _ = provision_batch_speculative_scheduled(
                net,
                state,
                demands,
                policy,
                order,
                window,
                schedule,
                threads,
                &sink,
                NoopSink,
                &NoopTracer,
            );
            let snap = sink.snapshot();
            // Absent entries mean "never recorded": windowed mode has no
            // group histogram, and either mode may simply not abort.
            let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
            let grp = snap.histograms.get("conflict_group_size");
            let ns = secs / demands.len() as f64 * 1e9;
            WindowResult {
                window,
                ns_per_demand: ns,
                speedup: serial_ns / ns,
                rounds: stats.rounds,
                abort_rate: stats.abort_rate(),
                retries: stats.retries,
                inline_routes: stats.inline_routes,
                abort_causes: AbortCauses {
                    conflict: counter("speculative_abort_conflict"),
                    ordering: counter("speculative_abort_ordering"),
                    load_shift: counter("speculative_abort_load_shift"),
                },
                group_size_mean: grp.map_or(0.0, |g| if g.count > 0 { g.mean() } else { 0.0 }),
                group_size_max: grp.map_or(0, |g| g.max),
            }
        })
        .collect()
}

/// One timed sharded grid cell: min-of-`passes` ns/demand plus the
/// speculation stats (which are thread-count-independent — the worker
/// fan-out changes only wall-clock time, never the round structure).
#[allow(clippy::too_many_arguments)]
fn sharded_cell(
    net: &WdmNetwork,
    state: &ResidualState,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
    window: usize,
    shards: usize,
    threads: usize,
    reference: &BatchOutcome,
    serial_ns: f64,
    passes: usize,
) -> ShardedCell {
    let mut secs_min = f64::INFINITY;
    let mut stats_last = SpeculationStats::default();
    for _ in 0..passes {
        let ((out, stats), secs) = timed(|| {
            // A fresh radius-1 oracle per pass keeps every pass identical
            // (the predictor builds its balls lazily) and classifies more
            // demands intra-shard than the engine's default radius-2 —
            // misclassification only costs bounded retries.
            let mut oracle = LocalityPredictor::new(net, 1);
            provision_batch_sharded(
                net,
                state,
                demands,
                policy,
                order,
                window,
                shards,
                threads,
                NoopRecorder,
                NoopSink,
                &NoopTracer,
                &mut oracle,
            )
        });
        assert_outcomes_identical(reference, &out, window);
        secs_min = secs_min.min(secs);
        stats_last = stats;
    }
    // One untimed instrumented pass for the abort split.
    let sink = TelemetrySink::new();
    let mut oracle = LocalityPredictor::new(net, 1);
    let _ = provision_batch_sharded(
        net,
        state,
        demands,
        policy,
        order,
        window,
        shards,
        threads,
        &sink,
        NoopSink,
        &NoopTracer,
        &mut oracle,
    );
    let snap = sink.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let ns = secs_min / demands.len() as f64 * 1e9;
    ShardedCell {
        shards,
        threads,
        window,
        ns_per_demand: ns,
        speedup_vs_serial: serial_ns / ns,
        cut_demand_ratio: stats_last.cut_demands as f64 / demands.len() as f64,
        abort_rate: stats_last.abort_rate(),
        inline_routes: stats_last.inline_routes,
        rounds: stats_last.rounds,
        lineage_aborts: counter("sharded_lineage_aborts"),
        escape_aborts: counter("sharded_escape_aborts"),
        verified_commits: counter("sharded_verified_commits"),
    }
}

fn print_mode(table: &mut Table, label: &str, results: &[WindowResult]) {
    for res in results {
        table.row(vec![
            format!("{label} K={}", res.window),
            format!("{:.0}", res.ns_per_demand),
            format!("{:.2}x", res.speedup),
            res.rounds.to_string(),
            format!("{:.1}%", res.abort_rate * 100.0),
            res.inline_routes.to_string(),
            format!("{:.1}", res.group_size_mean),
        ]);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    // Worker threads for the windowed/conflict-groups sweeps. Default 1:
    // the committed curves measure the engine, not the host's core count.
    let threads: usize = argv
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| argv.get(i + 1))
        .map(|v| v.parse().expect("--threads wants a worker count"))
        .unwrap_or(1);
    let (n, demand_count, passes) = if quick { (60, 150, 2) } else { (200, 1000, 3) };
    let (d, w) = (4usize, 8usize);

    let mut r = rng(0xBA7C4);
    let net = distinct_cost_instance(&mut r, n, d, w);
    assert!(
        link_local_revalidation_sound(Policy::CostOnly, &net),
        "instance must satisfy the full rule 2 guard \
         (distinct uniform costs + free conversion)"
    );
    let state = ResidualState::fresh(&net);
    let demands: Vec<Demand> = {
        let mut rr = rng(0xBA7C5);
        (0..demand_count)
            .map(|_| loop {
                let s = rr.gen_range(0..n as u32);
                let t = rr.gen_range(0..n as u32);
                if s != t {
                    return Demand::new(s, t);
                }
            })
            .collect()
    };
    let policy = Policy::CostOnly;
    let order = BatchOrder::AsGiven;

    println!(
        "parallel-batch — conflict-groups vs windowed speculation vs serial \
         (n={n}, m={}, W={w}, {demand_count} demands, CostOnly, \
         {threads} worker thread(s))\n",
        net.link_count()
    );

    // Untimed reference run: warms the caches and pins the outcome every
    // timed pass must reproduce bit-identically.
    let reference = provision_batch(&net, &state, &demands, policy, order);

    // Keep each configuration's fastest pass: the minimum is the run
    // least disturbed by other tenants of the machine, so the speedup
    // ratio is stable enough for CI to gate on (a single-pass measurement
    // swings ±25 % on a busy box).
    let mut serial_secs = f64::INFINITY;
    for _ in 0..passes {
        let (out, secs) = timed(|| provision_batch(&net, &state, &demands, policy, order));
        assert_outcomes_identical(&reference, &out, 0);
        serial_secs = serial_secs.min(secs);
    }
    let serial_ns = serial_secs / demand_count as f64 * 1e9;

    let groups = sweep(
        &net,
        &state,
        &demands,
        policy,
        order,
        ScheduleMode::ConflictGroups,
        threads,
        &reference,
        serial_ns,
        passes,
    );
    let windowed = sweep(
        &net,
        &state,
        &demands,
        policy,
        order,
        ScheduleMode::Windowed,
        threads,
        &reference,
        serial_ns,
        passes,
    );

    let mut table = Table::new(&[
        "config",
        "ns/demand",
        "speedup",
        "rounds",
        "abort rate",
        "inline",
        "grp mean",
    ]);
    table.row(vec![
        String::from("serial"),
        format!("{serial_ns:.0}"),
        String::from("1.00x"),
        String::from("-"),
        String::from("-"),
        String::from("-"),
        String::from("-"),
    ]);
    print_mode(&mut table, "conflict-groups", &groups);
    print_mode(&mut table, "windowed", &windowed);
    table.print();

    let speedup_at = |rs: &[WindowResult], k: usize| {
        rs.iter()
            .find(|r| r.window == k)
            .map(|r| r.speedup)
            .expect("window measured")
    };
    let k64_vs_k8 = speedup_at(&groups, 64) / speedup_at(&groups, 8);
    println!(
        "\nscaling: conflict-groups K=64 at {:.2} of K=8 speedup \
         (windowed reference: {:.2})",
        k64_vs_k8,
        speedup_at(&windowed, 64) / speedup_at(&windowed, 8)
    );

    // ── Sharded S × N grid on the locality instance (A9) ──────────────
    let lnet = locality_instance(&mut rng(0xBA7C6), n, w);
    assert!(
        link_local_revalidation_sound(Policy::CostOnly, &lnet),
        "locality instance must satisfy the full rule 2 guard \
         (distinct uniform costs + free conversion)"
    );
    let lstate = ResidualState::fresh(&lnet);
    let ldemands = locality_demands(&mut rng(0xBA7C7), n, demand_count);
    let lreference = provision_batch(&lnet, &lstate, &ldemands, policy, order);

    let mut lserial_secs = f64::INFINITY;
    for _ in 0..passes {
        let (out, secs) = timed(|| provision_batch(&lnet, &lstate, &ldemands, policy, order));
        assert_outcomes_identical(&lreference, &out, 0);
        lserial_secs = lserial_secs.min(secs);
    }
    let lserial_ns = lserial_secs / demand_count as f64 * 1e9;

    // Threads-matched windowed baseline at the deepest window: the bar
    // the sharded engine has to clear with the same resources.
    let mut win_secs = f64::INFINITY;
    for _ in 0..passes {
        let ((out, _), secs) = timed(|| {
            provision_batch_speculative_scheduled(
                &lnet,
                &lstate,
                &ldemands,
                policy,
                order,
                64,
                ScheduleMode::Windowed,
                4,
                NoopRecorder,
                NoopSink,
                &NoopTracer,
            )
        });
        assert_outcomes_identical(&lreference, &out, 64);
        win_secs = win_secs.min(secs);
    }
    let windowed_n4_ns = win_secs / demand_count as f64 * 1e9;

    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut cells = Vec::new();
    for shards in [2usize, 4, 8] {
        for nt in [1usize, 2, 4] {
            cells.push(sharded_cell(
                &lnet,
                &lstate,
                &ldemands,
                policy,
                order,
                64,
                shards,
                nt,
                &lreference,
                lserial_ns,
                passes,
            ));
        }
    }
    // One shallow-window cell to anchor the K=64-vs-K=8 scaling ratio.
    cells.push(sharded_cell(
        &lnet,
        &lstate,
        &ldemands,
        policy,
        order,
        8,
        4,
        4,
        &lreference,
        lserial_ns,
        passes,
    ));

    println!(
        "\nsharded — locality instance (n={n}, m={}, W={w}, {demand_count} demands, \
         {:.0}% near pairs; host can run {host_threads} thread(s))\n",
        lnet.link_count(),
        LOCALITY_FRACTION * 100.0
    );
    let mut stable = Table::new(&[
        "config",
        "ns/demand",
        "speedup",
        "cut dem",
        "abort rate",
        "lin/esc/ver",
        "inline",
        "rounds",
    ]);
    stable.row(vec![
        String::from("serial"),
        format!("{lserial_ns:.0}"),
        String::from("1.00x"),
        String::from("-"),
        String::from("-"),
        String::from("-"),
        String::from("-"),
        String::from("-"),
    ]);
    stable.row(vec![
        String::from("windowed K=64 N=4"),
        format!("{windowed_n4_ns:.0}"),
        format!("{:.2}x", lserial_ns / windowed_n4_ns),
        String::from("-"),
        String::from("-"),
        String::from("-"),
        String::from("-"),
        String::from("-"),
    ]);
    for c in &cells {
        stable.row(vec![
            format!("sharded S={} N={} K={}", c.shards, c.threads, c.window),
            format!("{:.0}", c.ns_per_demand),
            format!("{:.2}x", c.speedup_vs_serial),
            format!("{:.1}%", c.cut_demand_ratio * 100.0),
            format!("{:.1}%", c.abort_rate * 100.0),
            format!(
                "{}/{}/{}",
                c.lineage_aborts, c.escape_aborts, c.verified_commits
            ),
            c.inline_routes.to_string(),
            c.rounds.to_string(),
        ]);
    }
    stable.print();

    let cell = |s: usize, nt: usize, k: usize| {
        cells
            .iter()
            .find(|c| c.shards == s && c.threads == nt && c.window == k)
            .expect("cell measured")
    };
    let wallclock_speedup_n4 = cell(4, 1, 64).ns_per_demand / cell(4, 4, 64).ns_per_demand;
    let sharded_vs_windowed_n4 = windowed_n4_ns / cell(4, 4, 64).ns_per_demand;
    let shard_k64_vs_k8 = cell(4, 4, 64).speedup_vs_serial / cell(4, 4, 8).speedup_vs_serial;
    let cut_demand_ratio_s4 = cell(4, 1, 64).cut_demand_ratio;
    let abort_rate_s4n4 = cell(4, 4, 64).abort_rate;
    println!(
        "\nsharded scaling: N=1→N=4 wall-clock {wallclock_speedup_n4:.2}x, \
         vs windowed(N=4) {sharded_vs_windowed_n4:.2}x, K64/K8 {shard_k64_vs_k8:.2}, \
         cut demands {:.1}%",
        cut_demand_ratio_s4 * 100.0
    );

    // 0x5AD5 is the engine's fixed partition seed, so these reference
    // ratios describe the exact partitions the cells above ran on.
    let cut_link_ratio_s4 = TopologyPartition::grow(&lnet, 4, 0x5AD5).cut_ratio();
    let expander_cut_link_ratio_s4 = TopologyPartition::grow(&net, 4, 0x5AD5).cut_ratio();

    let sharded = ShardedReport {
        nodes: n,
        links: lnet.link_count(),
        wavelengths: w,
        demands: demand_count,
        locality_fraction: LOCALITY_FRACTION,
        single_core_host: host_threads == 1,
        host_threads,
        serial_ns_per_demand: lserial_ns,
        windowed_n4_ns_per_demand: windowed_n4_ns,
        cells,
        wallclock_speedup_n4,
        sharded_vs_windowed_n4,
        k64_vs_k8_speedup: shard_k64_vs_k8,
        cut_demand_ratio_s4,
        abort_rate_s4n4,
        cut_link_ratio_s4,
        expander_cut_link_ratio_s4,
    };

    let report = BenchReport {
        bench: String::from("parallel_batch"),
        unit: String::from("ns_per_demand"),
        nodes: n,
        links: net.link_count(),
        wavelengths: w,
        demands: demand_count,
        threads,
        serial_ns_per_demand: serial_ns,
        windows: groups,
        windowed_reference: windowed,
        k64_vs_k8_speedup: k64_vs_k8,
        sharded,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_parallel_batch.json", &json).expect("write BENCH_parallel_batch.json");
    println!("wrote BENCH_parallel_batch.json");
}
