//! Shared infrastructure for the experiment binaries and Criterion benches.
//!
//! One binary per experiment id from `DESIGN.md` §2 lives in `src/bin/`;
//! each regenerates the corresponding paper artifact as a printed table.
//! This library holds the instance generators and the table printer they
//! share.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_core::conversion::ConversionTable;
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_core::wavelength::{Wavelength, WavelengthSet};
use wdm_graph::{EdgeId, NodeId};

/// Parameters for random WDM instance generation.
#[derive(Debug, Clone, Copy)]
pub struct InstanceParams {
    /// Node count.
    pub n: usize,
    /// Wavelengths per fibre.
    pub w: usize,
    /// Directed link probability per ordered pair.
    pub link_p: f64,
    /// Probability each wavelength is installed on a link.
    pub lambda_p: f64,
    /// Fraction of installed channels pre-occupied.
    pub preload: f64,
    /// Whether the Theorem 2 premise (conversion ≤ any incident link cost)
    /// must hold.
    pub premise: bool,
}

impl Default for InstanceParams {
    fn default() -> Self {
        Self {
            n: 6,
            w: 3,
            link_p: 0.4,
            lambda_p: 0.7,
            preload: 0.0,
            premise: true,
        }
    }
}

/// Generates a random WDM network + residual state per `params`.
pub fn random_instance(
    rng: &mut ChaCha8Rng,
    params: InstanceParams,
) -> (WdmNetwork, ResidualState) {
    let conv_cost = if params.premise {
        rng.gen_range(0.0..1.0) // link costs are >= 1
    } else {
        rng.gen_range(5.0..20.0) // deliberately violates the premise
    };
    let mut b = NetworkBuilder::new(params.w);
    for _ in 0..params.n {
        b.add_node(ConversionTable::Full { cost: conv_cost });
    }
    for u in 0..params.n {
        for v in 0..params.n {
            if u != v && rng.gen_bool(params.link_p) {
                let mut set = WavelengthSet::empty();
                for l in 0..params.w {
                    if rng.gen_bool(params.lambda_p) {
                        set.insert(Wavelength(l as u8));
                    }
                }
                if set.is_empty() {
                    set.insert(Wavelength(rng.gen_range(0..params.w) as u8));
                }
                b.add_link_with(
                    NodeId(u as u32),
                    NodeId(v as u32),
                    rng.gen_range(1.0..10.0),
                    set,
                );
            }
        }
    }
    let net = b.build();
    let mut state = ResidualState::fresh(&net);
    if params.preload > 0.0 {
        for ei in 0..net.link_count() {
            let e = EdgeId::from(ei);
            for l in net.lambda(e).iter() {
                if rng.gen_bool(params.preload) {
                    let _ = state.occupy(&net, e, l);
                }
            }
        }
    }
    (net, state)
}

/// A random connected WDM network lifted from `wdm_graph::topology`
/// generators, with full complements and uniform costs — used by the
/// scaling experiments where structure should be controlled.
pub fn random_connected_instance(
    rng: &mut ChaCha8Rng,
    n: usize,
    avg_degree: usize,
    w: usize,
) -> WdmNetwork {
    let m = n * avg_degree / 2;
    let topo = wdm_graph::topology::random_connected(n, m.max(n - 1), 1.0..10.0, rng);
    NetworkBuilder::from_topology(&topo, w, ConversionTable::Full { cost: 0.5 }, 1.0).build()
}

/// Like [`random_connected_instance`] but with link costs quantised to
/// quarter-integers and free conversions: every auxiliary-graph weight is a
/// dyadic rational, so the engine's integer certificate holds and the
/// scaled bucket-heap search path engages. Structure and cost magnitudes
/// match the continuous generator (same topology distribution), keeping the
/// tiers comparable.
pub fn dyadic_connected_instance(
    rng: &mut ChaCha8Rng,
    n: usize,
    avg_degree: usize,
    w: usize,
) -> WdmNetwork {
    let m = n * avg_degree / 2;
    let topo = wdm_graph::topology::random_connected(n, m.max(n - 1), 1.0..10.0, rng);
    let mut b = NetworkBuilder::new(w);
    for _ in topo.node_ids() {
        b.add_node(ConversionTable::Full { cost: 0.0 });
    }
    for e in topo.edge_ids() {
        let (u, v) = topo.endpoints(e);
        let q = ((topo.weight(e) * 4.0).round() / 4.0).max(0.25);
        b.add_link(u, v, q);
    }
    b.build()
}

/// Simple fixed-width table printer (markdown-ish).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {c:>w$} |", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Creates the deterministic RNG used by all experiments.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// `--telemetry` output mode shared by the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Write `TELEMETRY_<bin>.json` with the per-policy aggregates (the
    /// artifact CI uploads next to `BENCH_*.json`).
    Json,
    /// Print each policy's merged counter/histogram summary to stdout.
    Summary,
}

/// Parses `--telemetry json|summary` (also `--telemetry=MODE`) out of an
/// argument list; `None` when the flag is absent.
pub fn telemetry_mode_from(args: &[String]) -> Result<Option<TelemetryMode>, String> {
    let mut value: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--telemetry=") {
            value = Some(v);
        } else if args[i] == "--telemetry" {
            value = Some(
                args.get(i + 1)
                    .ok_or("--telemetry needs a mode (json|summary)")?,
            );
            i += 1;
        }
        i += 1;
    }
    match value {
        None => Ok(None),
        Some("json") => Ok(Some(TelemetryMode::Json)),
        Some("summary") => Ok(Some(TelemetryMode::Summary)),
        Some(other) => Err(format!(
            "unknown --telemetry mode '{other}' (expected json|summary)"
        )),
    }
}

/// [`telemetry_mode_from`] over the process arguments.
pub fn telemetry_mode() -> Result<Option<TelemetryMode>, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    telemetry_mode_from(&args)
}

/// Emits the per-policy telemetry an experiment collected: a stdout summary
/// or a pretty-printed `TELEMETRY_<bin>.json` in the working directory.
pub fn emit_policy_telemetry(
    bin: &str,
    mode: TelemetryMode,
    agg: &std::collections::BTreeMap<String, wdm_sim::metrics::PolicyTelemetry>,
) -> Result<(), String> {
    match mode {
        TelemetryMode::Summary => {
            for t in agg.values() {
                println!(
                    "\n--- telemetry: {} ({} replications merged) ---",
                    t.policy, t.replications
                );
                print!("{}", t.snapshot.summary());
            }
        }
        TelemetryMode::Json => {
            let entries: Vec<wdm_sim::metrics::PolicyTelemetry> = agg.values().cloned().collect();
            let path = format!("TELEMETRY_{bin}.json");
            let json = serde_json::to_string_pretty(&entries).map_err(|e| e.to_string())?;
            std::fs::write(&path, json + "\n").map_err(|e| format!("writing {path}: {e}"))?;
            println!("\ntelemetry snapshot written to {path}");
        }
    }
    Ok(())
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes [`Summary`] of `values` (empty input gives zeros).
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary {
            n: 0,
            mean: 0.0,
            min: 0.0,
            p95: 0.0,
            max: 0.0,
        };
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank95 = ((0.95 * v.len() as f64).ceil() as usize).clamp(1, v.len());
    Summary {
        n: v.len(),
        mean: v.iter().sum::<f64>() / v.len() as f64,
        min: v[0],
        p95: v[rank95 - 1],
        max: *v.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_generation_respects_premise_flag() {
        let mut r = rng(1);
        let (net, _) = random_instance(&mut r, InstanceParams::default());
        assert!(net.satisfies_ratio_premise());
        let (net2, _) = random_instance(
            &mut r,
            InstanceParams {
                premise: false,
                ..Default::default()
            },
        );
        assert!(!net2.satisfies_ratio_premise());
    }

    #[test]
    fn preload_occupies_channels() {
        let mut r = rng(2);
        let (net, st) = random_instance(
            &mut r,
            InstanceParams {
                preload: 0.5,
                ..Default::default()
            },
        );
        let used: usize = (0..net.link_count())
            .map(|i| st.used_count(EdgeId::from(i)))
            .sum();
        assert!(used > 0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| long-header |"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn summary_stats() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p95, 4.0);
        assert_eq!(summarize(&[]).n, 0);
    }

    #[test]
    fn telemetry_mode_parses_both_spellings() {
        let argv = |s: &[&str]| -> Vec<String> { s.iter().map(|a| a.to_string()).collect() };
        assert_eq!(telemetry_mode_from(&argv(&["--quick"])), Ok(None));
        assert_eq!(
            telemetry_mode_from(&argv(&["--telemetry", "json"])),
            Ok(Some(TelemetryMode::Json))
        );
        assert_eq!(
            telemetry_mode_from(&argv(&["--quick", "--telemetry=summary"])),
            Ok(Some(TelemetryMode::Summary))
        );
        assert!(telemetry_mode_from(&argv(&["--telemetry"])).is_err());
        assert!(telemetry_mode_from(&argv(&["--telemetry", "csv"])).is_err());
    }

    #[test]
    fn connected_instance_is_routable() {
        let mut r = rng(3);
        let net = random_connected_instance(&mut r, 20, 4, 4);
        assert_eq!(net.node_count(), 20);
        assert!(net.link_count() >= 38);
    }
}
