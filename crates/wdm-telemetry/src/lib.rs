//! Telemetry substrate for the routing/simulation stack.
//!
//! Everything the paper's evaluation wants to see — per-request semilightpath
//! cost (Eq. 1), blocking causes, how often the incremental [`AuxEngine`]
//! fast path actually fires — flows through one narrow interface: the
//! [`Recorder`] trait. Instrumented code is generic over `R: Recorder` and
//! the default [`NoopRecorder`] monomorphises every call to nothing, so the
//! uninstrumented hot path keeps its numbers (verified by an A/B criterion
//! run in `wdm-bench`).
//!
//! The live implementation, [`TelemetrySink`], is lock-free on the hot path:
//! plain atomic counters and atomic log-scaled histograms
//! (HdrHistogram-style fixed buckets, ≤ 12.5 % relative error, no deps).
//! A sink drains into a [`TelemetrySnapshot`] — a serde-friendly,
//! order-insensitive value that merges commutatively across parallel shards.
//!
//! [`AuxEngine`]: ../wdm_core/aux_engine/index.html

mod chrome;
mod flight;
mod hist;
mod sink;
mod snapshot;
mod span;

pub use chrome::chrome_trace_json;
pub use flight::{
    FlightAnnotation, FlightAnomaly, FlightDump, FlightRecord, FlightRecorder,
    DEFAULT_ANOMALY_THRESHOLD, DEFAULT_ANOMALY_WINDOW, DEFAULT_FLIGHT_CAPACITY,
};
pub use hist::{bucket_bounds, bucket_index, AtomicHistogram, NUM_BUCKETS};
pub use sink::TelemetrySink;
pub use snapshot::{BucketSnapshot, HistogramSnapshot, TelemetrySnapshot};
pub use span::{
    Clock, ManualClock, MonotonicClock, NoopTracer, Phase, SpanBuffer, SpanRecord, Tracer,
};

/// Monotonic event counters, one slot per variant in a fixed array.
///
/// The discriminant is the array index; [`Counter::ALL`] and
/// [`Counter::name`] keep the numeric layout and the snapshot key space in
/// one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Requests for which a route was found.
    RequestsRouted = 0,
    /// Requests refused for any reason (sum of the `Blocked*` causes).
    RequestsBlocked = 1,
    /// Blocked: degenerate request (s == t).
    BlockedDegenerate = 2,
    /// Blocked: no edge-disjoint pair exists in the auxiliary graph.
    BlockedNoDisjointPair = 3,
    /// Blocked: Lemma 2 refinement found no feasible wavelength assignment.
    BlockedRefinement = 4,
    /// Blocked: the §4.1 threshold search exhausted its budget.
    BlockedLoadSearch = 5,
    /// Blocked: destination unreachable even ignoring disjointness.
    BlockedUnreachable = 6,
    /// Auxiliary-graph skeletons built from scratch (engine cold start).
    EngineSkeletonBuilds = 7,
    /// Engine syncs that re-weighted every link (threshold change etc.).
    EngineFullRefreshes = 8,
    /// Engine syncs that re-weighted only dirty links.
    EngineDirtyRefreshes = 9,
    /// Total links re-weighted across all dirty refreshes.
    EngineDirtyLinksRefreshed = 10,
    /// Engine syncs that found nothing to do (pure skeleton reuse).
    EngineFastSyncs = 11,
    /// Suurballe disjoint-pair searches executed.
    SuurballeSearches = 12,
    /// G_c feasibility probes issued by the §4.1 threshold search.
    ThresholdProbes = 13,
    /// Backup channels reused from another request's backup (shared mesh).
    SharedBackupChannelsShared = 14,
    /// Backup channels reserved fresh by the shared-mesh provisioner.
    SharedBackupChannelsFresh = 15,
    /// Search-arena buffer growth events (allocations on the hot path).
    ArenaAllocEvents = 16,
    /// Speculative batch routes committed straight from their snapshot
    /// results (no serial re-route needed).
    SpeculativeCommits = 17,
    /// Speculative batch routes discarded by conflict validation.
    SpeculativeAborts = 18,
    /// Re-speculation attempts issued for aborted routes (one per abort).
    SpeculativeRetries = 19,
    /// Shared-backup pool channel reservations (outside journal coverage).
    PoolReserve = 20,
    /// Shared-backup pool channel releases (outside journal coverage).
    PoolRelease = 21,
    /// Speculative aborts caused by a footprint conflict with an earlier
    /// commit in the same window.
    SpeculativeAbortConflict = 22,
    /// Speculative aborts forced by the strict-ordering rule (any earlier
    /// commit invalidates later snapshot results under this policy).
    SpeculativeAbortOrdering = 23,
    /// Speculative aborts where the route failed outright against the
    /// shifted load after earlier commits landed.
    SpeculativeAbortLoadShift = 24,
    /// Demands the conflict-aware scheduler routed inline at their serial
    /// commit point (skipped by group selection, never speculated).
    SpeculativeInlineRoutes = 25,
    /// Demands the sharded engine classified cross-shard (endpoints in
    /// different shards or predicted footprint touching the cut) and
    /// routed inline at their serial slot.
    ShardedCutDemands = 26,
    /// Sharded speculation results discarded because an earlier member of
    /// the same shard aborted in the same round (the shard mirror's
    /// lineage diverged from the serial state).
    ShardedLineageAborts = 27,
    /// Sharded aborts whose speculated route escaped its own shard — the
    /// real route left the region its footprint prediction stayed inside.
    ShardedEscapeAborts = 28,
    /// Sharded speculations that failed the link-level owner-stamp check
    /// but stayed channel-feasible on the live state: occupancy within a
    /// batch is monotone, so the mirror's argmin is still the serial
    /// argmin and the route commits without a retry or poisoning.
    ShardedVerifiedCommits = 29,
    /// Daemon: provision requests that were accepted and committed.
    ServeProvisionOk = 30,
    /// Daemon: provision requests refused by the routing policy.
    ServeProvisionBlocked = 31,
    /// Daemon: teardown requests that released a live connection.
    ServeTeardownOk = 32,
    /// Daemon: teardown requests naming an unknown connection id.
    ServeTeardownMiss = 33,
    /// Daemon: fail-link requests applied.
    ServeFailLink = 34,
    /// Daemon: repair-link requests applied.
    ServeRepairLink = 35,
    /// Daemon: state-query requests served.
    ServeQuery = 36,
    /// Daemon: requests shed by admission control (bounded queue full,
    /// answered 503 + Retry-After).
    ServeShed = 37,
    /// Daemon: requests dropped because their deadline expired while
    /// queued (answered 503).
    ServeDeadlineDrop = 38,
    /// Daemon: malformed HTTP requests rejected by the listener.
    ServeBadRequest = 39,
    /// Daemon: optimistic commits that conflicted with a concurrent
    /// mutation and re-routed under the write lock.
    ServeConflictRetries = 40,
}

impl Counter {
    /// Number of counter slots.
    pub const COUNT: usize = 41;

    /// Every variant, in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::RequestsRouted,
        Counter::RequestsBlocked,
        Counter::BlockedDegenerate,
        Counter::BlockedNoDisjointPair,
        Counter::BlockedRefinement,
        Counter::BlockedLoadSearch,
        Counter::BlockedUnreachable,
        Counter::EngineSkeletonBuilds,
        Counter::EngineFullRefreshes,
        Counter::EngineDirtyRefreshes,
        Counter::EngineDirtyLinksRefreshed,
        Counter::EngineFastSyncs,
        Counter::SuurballeSearches,
        Counter::ThresholdProbes,
        Counter::SharedBackupChannelsShared,
        Counter::SharedBackupChannelsFresh,
        Counter::ArenaAllocEvents,
        Counter::SpeculativeCommits,
        Counter::SpeculativeAborts,
        Counter::SpeculativeRetries,
        Counter::PoolReserve,
        Counter::PoolRelease,
        Counter::SpeculativeAbortConflict,
        Counter::SpeculativeAbortOrdering,
        Counter::SpeculativeAbortLoadShift,
        Counter::SpeculativeInlineRoutes,
        Counter::ShardedCutDemands,
        Counter::ShardedLineageAborts,
        Counter::ShardedEscapeAborts,
        Counter::ShardedVerifiedCommits,
        Counter::ServeProvisionOk,
        Counter::ServeProvisionBlocked,
        Counter::ServeTeardownOk,
        Counter::ServeTeardownMiss,
        Counter::ServeFailLink,
        Counter::ServeRepairLink,
        Counter::ServeQuery,
        Counter::ServeShed,
        Counter::ServeDeadlineDrop,
        Counter::ServeBadRequest,
        Counter::ServeConflictRetries,
    ];

    /// Stable snake_case key used in snapshots and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Counter::RequestsRouted => "requests_routed",
            Counter::RequestsBlocked => "requests_blocked",
            Counter::BlockedDegenerate => "blocked_degenerate",
            Counter::BlockedNoDisjointPair => "blocked_no_disjoint_pair",
            Counter::BlockedRefinement => "blocked_refinement",
            Counter::BlockedLoadSearch => "blocked_load_search",
            Counter::BlockedUnreachable => "blocked_unreachable",
            Counter::EngineSkeletonBuilds => "engine_skeleton_builds",
            Counter::EngineFullRefreshes => "engine_full_refreshes",
            Counter::EngineDirtyRefreshes => "engine_dirty_refreshes",
            Counter::EngineDirtyLinksRefreshed => "engine_dirty_links_refreshed",
            Counter::EngineFastSyncs => "engine_fast_syncs",
            Counter::SuurballeSearches => "suurballe_searches",
            Counter::ThresholdProbes => "threshold_probes",
            Counter::SharedBackupChannelsShared => "shared_backup_channels_shared",
            Counter::SharedBackupChannelsFresh => "shared_backup_channels_fresh",
            Counter::ArenaAllocEvents => "arena_alloc_events",
            Counter::SpeculativeCommits => "speculative_commits",
            Counter::SpeculativeAborts => "speculative_aborts",
            Counter::SpeculativeRetries => "speculative_retries",
            Counter::PoolReserve => "pool_reserve",
            Counter::PoolRelease => "pool_release",
            Counter::SpeculativeAbortConflict => "speculative_abort_conflict",
            Counter::SpeculativeAbortOrdering => "speculative_abort_ordering",
            Counter::SpeculativeAbortLoadShift => "speculative_abort_load_shift",
            Counter::SpeculativeInlineRoutes => "speculative_inline_routes",
            Counter::ShardedCutDemands => "sharded_cut_demands",
            Counter::ShardedLineageAborts => "sharded_lineage_aborts",
            Counter::ShardedEscapeAborts => "sharded_escape_aborts",
            Counter::ShardedVerifiedCommits => "sharded_verified_commits",
            Counter::ServeProvisionOk => "serve_provision_ok",
            Counter::ServeProvisionBlocked => "serve_provision_blocked",
            Counter::ServeTeardownOk => "serve_teardown_ok",
            Counter::ServeTeardownMiss => "serve_teardown_miss",
            Counter::ServeFailLink => "serve_fail_link",
            Counter::ServeRepairLink => "serve_repair_link",
            Counter::ServeQuery => "serve_query",
            Counter::ServeShed => "serve_shed",
            Counter::ServeDeadlineDrop => "serve_deadline_drop",
            Counter::ServeBadRequest => "serve_bad_request",
            Counter::ServeConflictRetries => "serve_conflict_retries",
        }
    }

    /// One-line description used for Prometheus `# HELP` metadata.
    pub fn help(self) -> &'static str {
        match self {
            Counter::RequestsRouted => "Requests for which a route was found",
            Counter::RequestsBlocked => "Requests refused for any reason",
            Counter::BlockedDegenerate => "Blocked: degenerate request (src == dst)",
            Counter::BlockedNoDisjointPair => "Blocked: no edge-disjoint pair exists",
            Counter::BlockedRefinement => "Blocked: no feasible wavelength assignment",
            Counter::BlockedLoadSearch => "Blocked: threshold search exhausted its budget",
            Counter::BlockedUnreachable => "Blocked: destination unreachable",
            Counter::EngineSkeletonBuilds => "Auxiliary-graph skeletons built from scratch",
            Counter::EngineFullRefreshes => "Engine syncs that re-weighted every link",
            Counter::EngineDirtyRefreshes => "Engine syncs that re-weighted only dirty links",
            Counter::EngineDirtyLinksRefreshed => "Links re-weighted across dirty refreshes",
            Counter::EngineFastSyncs => "Engine syncs that found nothing to do",
            Counter::SuurballeSearches => "Suurballe disjoint-pair searches executed",
            Counter::ThresholdProbes => "Feasibility probes issued by the threshold search",
            Counter::SharedBackupChannelsShared => "Backup channels reused from another backup",
            Counter::SharedBackupChannelsFresh => "Backup channels reserved fresh",
            Counter::ArenaAllocEvents => "Search-arena buffer growth events",
            Counter::SpeculativeCommits => "Speculative routes committed from their snapshot",
            Counter::SpeculativeAborts => "Speculative routes discarded by validation",
            Counter::SpeculativeRetries => "Re-speculation attempts for aborted routes",
            Counter::PoolReserve => "Shared-backup pool channel reservations",
            Counter::PoolRelease => "Shared-backup pool channel releases",
            Counter::SpeculativeAbortConflict => "Speculative aborts from footprint conflicts",
            Counter::SpeculativeAbortOrdering => "Speculative aborts from strict ordering",
            Counter::SpeculativeAbortLoadShift => "Speculative aborts from shifted load",
            Counter::SpeculativeInlineRoutes => "Demands routed inline at their serial slot",
            Counter::ShardedCutDemands => "Demands classified cross-shard and routed inline",
            Counter::ShardedLineageAborts => "Sharded aborts from a diverged shard lineage",
            Counter::ShardedEscapeAborts => "Sharded aborts whose route escaped its shard",
            Counter::ShardedVerifiedCommits => "Sharded commits verified against the live state",
            Counter::ServeProvisionOk => "Daemon provision requests accepted and committed",
            Counter::ServeProvisionBlocked => "Daemon provision requests refused by routing",
            Counter::ServeTeardownOk => "Daemon teardowns that released a connection",
            Counter::ServeTeardownMiss => "Daemon teardowns naming an unknown connection",
            Counter::ServeFailLink => "Daemon fail-link requests applied",
            Counter::ServeRepairLink => "Daemon repair-link requests applied",
            Counter::ServeQuery => "Daemon state and diagnostics queries served",
            Counter::ServeShed => "Daemon requests shed by admission control",
            Counter::ServeDeadlineDrop => "Daemon requests dropped on an expired deadline",
            Counter::ServeBadRequest => "Daemon malformed requests rejected",
            Counter::ServeConflictRetries => "Daemon commits re-routed after a conflict",
        }
    }
}

/// Value distributions, one log-scaled histogram per variant.
///
/// Names ending in `_ns` record wall-clock durations and are inherently
/// nondeterministic run-to-run; everything else is a pure function of the
/// request stream and reproduces bit-for-bit under a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Disjoint-pair search duration, nanoseconds (nondeterministic).
    SearchNanos = 0,
    /// Whole-request routing duration, nanoseconds (nondeterministic).
    RequestNanos = 1,
    /// Total route cost (Eq. 1), millicost units (deterministic).
    RouteCostMilli = 2,
    /// §4.1 threshold-search probes per request (deterministic).
    ThresholdProbes = 3,
    /// Primary-path hop count (deterministic).
    PrimaryHops = 4,
    /// Backup-path hop count (deterministic).
    BackupHops = 5,
    /// Demands per speculative batch window (deterministic).
    WindowOccupancy = 6,
    /// Link-disjoint conflict-group size per scheduling round — how many
    /// demands the conflict-aware scheduler speculated together
    /// (deterministic).
    ConflictGroupSize = 7,
    /// Demands queued per active shard per sharded-engine round — the
    /// shard workers' load balance (deterministic).
    ShardOccupancy = 8,
    /// Speculation aborts per active shard per sharded-engine round,
    /// zeros included — per-shard abort pressure (deterministic).
    ShardAborts = 9,
    /// Daemon: end-to-end request latency from accept to response write,
    /// nanoseconds (nondeterministic).
    ServeLatencyNanos = 10,
    /// Daemon: time a request spent in the admission queue before a
    /// worker picked it up, nanoseconds (nondeterministic).
    ServeQueueNanos = 11,
    /// Daemon: WAL append + flush per journal event, nanoseconds
    /// (nondeterministic).
    WalFsyncNanos = 12,
    /// Daemon: time waiting to acquire the shared provisioner lock per
    /// provision (read + write acquisition), nanoseconds
    /// (nondeterministic).
    ServeLockNanos = 13,
    /// Daemon: routing-search time under the read lock per provision,
    /// nanoseconds (nondeterministic).
    ServeRouteNanos = 14,
    /// Daemon: commit time under the write lock per provision, excluding
    /// the WAL flush, nanoseconds (nondeterministic).
    ServeCommitNanos = 15,
}

impl Hist {
    /// Number of histogram slots.
    pub const COUNT: usize = 16;

    /// Every variant, in index order.
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::SearchNanos,
        Hist::RequestNanos,
        Hist::RouteCostMilli,
        Hist::ThresholdProbes,
        Hist::PrimaryHops,
        Hist::BackupHops,
        Hist::WindowOccupancy,
        Hist::ConflictGroupSize,
        Hist::ShardOccupancy,
        Hist::ShardAborts,
        Hist::ServeLatencyNanos,
        Hist::ServeQueueNanos,
        Hist::WalFsyncNanos,
        Hist::ServeLockNanos,
        Hist::ServeRouteNanos,
        Hist::ServeCommitNanos,
    ];

    /// Stable snake_case key used in snapshots and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SearchNanos => "search_ns",
            Hist::RequestNanos => "request_ns",
            Hist::RouteCostMilli => "route_cost_milli",
            Hist::ThresholdProbes => "threshold_probes",
            Hist::PrimaryHops => "primary_hops",
            Hist::BackupHops => "backup_hops",
            Hist::WindowOccupancy => "window_occupancy",
            Hist::ConflictGroupSize => "conflict_group_size",
            Hist::ShardOccupancy => "shard_occupancy",
            Hist::ShardAborts => "shard_aborts",
            Hist::ServeLatencyNanos => "serve_latency_ns",
            Hist::ServeQueueNanos => "serve_queue_ns",
            Hist::WalFsyncNanos => "wal_fsync_ns",
            Hist::ServeLockNanos => "serve_lock_ns",
            Hist::ServeRouteNanos => "serve_route_ns",
            Hist::ServeCommitNanos => "serve_commit_ns",
        }
    }

    /// One-line description used for Prometheus `# HELP` metadata.
    pub fn help(self) -> &'static str {
        match self {
            Hist::SearchNanos => "Disjoint-pair search duration in nanoseconds",
            Hist::RequestNanos => "Whole-request routing duration in nanoseconds",
            Hist::RouteCostMilli => "Total route cost (Eq. 1) in millicost units",
            Hist::ThresholdProbes => "Threshold-search probes per request",
            Hist::PrimaryHops => "Primary-path hop count",
            Hist::BackupHops => "Backup-path hop count",
            Hist::WindowOccupancy => "Demands per speculative batch window",
            Hist::ConflictGroupSize => "Link-disjoint conflict-group size per round",
            Hist::ShardOccupancy => "Demands queued per active shard per round",
            Hist::ShardAborts => "Speculation aborts per active shard per round",
            Hist::ServeLatencyNanos => {
                "Daemon request latency from accept to response in nanoseconds"
            }
            Hist::ServeQueueNanos => "Daemon admission-queue wait in nanoseconds",
            Hist::WalFsyncNanos => "WAL append and flush per journal event in nanoseconds",
            Hist::ServeLockNanos => "Provisioner lock acquisition per provision in nanoseconds",
            Hist::ServeRouteNanos => "Routing search under the read lock in nanoseconds",
            Hist::ServeCommitNanos => {
                "Commit under the write lock excluding the WAL flush in nanoseconds"
            }
        }
    }

    /// Whether this histogram records wall-clock time (and therefore cannot
    /// be expected to reproduce bucket-for-bucket across runs).
    pub fn is_timing(self) -> bool {
        matches!(
            self,
            Hist::SearchNanos
                | Hist::RequestNanos
                | Hist::ServeLatencyNanos
                | Hist::ServeQueueNanos
                | Hist::WalFsyncNanos
                | Hist::ServeLockNanos
                | Hist::ServeRouteNanos
                | Hist::ServeCommitNanos
        )
    }
}

/// How the incremental auxiliary-graph engine satisfied one request.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum CacheOutcome {
    /// Skeleton and weights were both current; nothing recomputed.
    SkeletonReuse,
    /// Skeleton reused; only the listed number of dirty links re-weighted.
    DirtyRefresh {
        /// Links whose weights were recomputed.
        links: u32,
    },
    /// Skeleton rebuilt from scratch (cold start or topology change).
    FullRebuild,
}

/// Structured per-request trace event.
///
/// Node ids and wavelengths are raw indices so this crate stays
/// dependency-free; the emitting layer owns the mapping.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RouteTrace {
    /// Monotonic id from [`Recorder::next_request_id`].
    pub request_id: u64,
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Wavelength index at each hop of the primary semilightpath.
    pub primary_wavelengths: Vec<u32>,
    /// Wavelength index at each hop of the backup semilightpath (empty for
    /// unprotected routes).
    pub backup_wavelengths: Vec<u32>,
    /// Channel cost of the primary (Eq. 1 terms attributable to it).
    pub primary_cost: f64,
    /// Channel cost of the backup (0 for unprotected routes).
    pub backup_cost: f64,
    /// Engine cache outcome for the request's dominant engine sync.
    pub cache: CacheOutcome,
    /// Search-arena buffer growth events during the request.
    pub arena_allocs: u64,
    /// Wall-clock duration of the routing search, nanoseconds.
    pub search_ns: u64,
}

/// The instrumentation interface the routing stack is generic over.
///
/// Call sites gate any non-trivial argument computation on
/// [`Recorder::enabled`] so the [`NoopRecorder`] path compiles to nothing:
///
/// ```
/// # use wdm_telemetry::{Recorder, NoopRecorder, Hist};
/// # let recorder = NoopRecorder;
/// # let expensive_summary = || 42u64;
/// if recorder.enabled() {
///     recorder.observe(Hist::RouteCostMilli, expensive_summary());
/// }
/// ```
pub trait Recorder {
    /// Whether events are recorded at all. `false` lets callers skip
    /// computing event payloads entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Increments `counter` by `delta`.
    fn add(&self, counter: Counter, delta: u64);

    /// Records `value` into `hist`.
    fn observe(&self, hist: Hist, value: u64);

    /// Emits a per-request trace event.
    fn trace(&self, event: &RouteTrace);

    /// Allocates the next request id (0 when disabled).
    fn next_request_id(&self) -> u64;
}

/// The zero-cost default: every method is an empty `#[inline(always)]`
/// body, so code generic over `R: Recorder` monomorphised with this type
/// carries no instrumentation at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn add(&self, _counter: Counter, _delta: u64) {}

    #[inline(always)]
    fn observe(&self, _hist: Hist, _value: u64) {}

    #[inline(always)]
    fn trace(&self, _event: &RouteTrace) {}

    #[inline(always)]
    fn next_request_id(&self) -> u64 {
        0
    }
}

/// Shared references record through the underlying recorder, so a single
/// [`TelemetrySink`] can serve many contexts (and many threads) at once.
impl<R: Recorder + ?Sized> Recorder for &R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn add(&self, counter: Counter, delta: u64) {
        (**self).add(counter, delta);
    }

    #[inline]
    fn observe(&self, hist: Hist, value: u64) {
        (**self).observe(hist, value);
    }

    #[inline]
    fn trace(&self, event: &RouteTrace) {
        (**self).trace(event);
    }

    #[inline]
    fn next_request_id(&self) -> u64 {
        (**self).next_request_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_match_layout() {
        let mut seen = std::collections::HashSet::new();
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
        }
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
    }

    #[test]
    fn hist_names_are_unique_and_match_layout() {
        let mut seen = std::collections::HashSet::new();
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
            assert!(seen.insert(h.name()), "duplicate name {}", h.name());
        }
        assert_eq!(Hist::ALL.len(), Hist::COUNT);
        assert!(Hist::SearchNanos.is_timing());
        assert!(!Hist::RouteCostMilli.is_timing());
    }

    #[test]
    fn noop_recorder_is_disabled() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        assert_eq!(r.next_request_id(), 0);
        // And through the blanket `&R` impl.
        let by_ref: &dyn Recorder = &&r;
        assert!(!by_ref.enabled());
    }

    #[test]
    fn route_trace_round_trips_through_json() {
        let t = RouteTrace {
            request_id: 7,
            src: 0,
            dst: 13,
            primary_wavelengths: vec![0, 0, 2],
            backup_wavelengths: vec![1, 1],
            primary_cost: 3.5,
            backup_cost: 4.25,
            cache: CacheOutcome::DirtyRefresh { links: 9 },
            arena_allocs: 1,
            search_ns: 12_345,
        };
        let text = serde_json::to_string(&t).unwrap();
        let back: RouteTrace = serde_json::from_str(&text).unwrap();
        assert_eq!(back, t);
        for cache in [CacheOutcome::SkeletonReuse, CacheOutcome::FullRebuild] {
            let text = serde_json::to_string(&cache).unwrap();
            let back: CacheOutcome = serde_json::from_str(&text).unwrap();
            assert_eq!(back, cache);
        }
    }
}
