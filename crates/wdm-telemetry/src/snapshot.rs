//! Immutable, serde-friendly snapshots of a [`TelemetrySink`].

use std::collections::BTreeMap;

use crate::hist::{bucket_bounds, AtomicHistogram, NUM_BUCKETS};
use crate::sink::TelemetrySink;
use crate::{Counter, Hist};

/// One non-empty histogram bucket.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BucketSnapshot {
    /// Smallest value the bucket covers (inclusive).
    pub lo: u64,
    /// Largest value the bucket covers (inclusive).
    pub hi: u64,
    /// Recorded values in `[lo, hi]`.
    pub count: u64,
}

/// Frozen histogram totals; only occupied buckets are materialised.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Occupied buckets, ascending by `lo`.
    pub buckets: Vec<BucketSnapshot>,
}

impl HistogramSnapshot {
    fn from_atomic(h: &AtomicHistogram) -> Self {
        let mut buckets = Vec::new();
        for i in 0..NUM_BUCKETS {
            let count = h.bucket(i);
            if count > 0 {
                let (lo, hi) = bucket_bounds(i);
                buckets.push(BucketSnapshot { lo, hi, count });
            }
        }
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets,
        }
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`;
    /// `None` when empty. Error is bounded by the bucket width (≤ 12.5 %).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return Some(b.hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Adds `other`'s population into `self` (bucket-wise; commutative and
    /// associative, so shard merge order does not matter).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u64, BucketSnapshot> =
            self.buckets.iter().map(|b| (b.lo, *b)).collect();
        for b in &other.buckets {
            merged
                .entry(b.lo)
                .and_modify(|slot| slot.count += b.count)
                .or_insert(*b);
        }
        self.buckets = merged.into_values().collect();
    }
}

/// Frozen totals for a whole sink, keyed by the stable event names.
///
/// The map form (rather than fixed arrays) keeps snapshots forward- and
/// backward-compatible across taxonomy changes: old JSON files load fine
/// when counters are added later, and diff tooling works on any pair.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct TelemetrySnapshot {
    /// Counter totals by [`Counter::name`]; zero counters are included so a
    /// snapshot always shows the full taxonomy.
    pub counters: BTreeMap<String, u64>,
    /// Histogram totals by [`Hist::name`]; empty histograms are skipped.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Point-in-time gauges (queue depth, epoch, WAL sequence, …) set by
    /// the embedding process via [`TelemetrySnapshot::set_gauge`]. Unlike
    /// counters these are instantaneous readings, not monotonic totals.
    pub gauges: BTreeMap<String, u64>,
}

impl TelemetrySnapshot {
    pub(crate) fn from_sink(sink: &TelemetrySink) -> Self {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_string(), sink.counter(c)))
            .collect();
        let histograms = Hist::ALL
            .iter()
            .filter_map(|&h| {
                let snap = HistogramSnapshot::from_atomic(sink.histogram(h));
                (snap.count > 0).then(|| (h.name().to_string(), snap))
            })
            .collect();
        TelemetrySnapshot {
            counters,
            histograms,
            gauges: BTreeMap::new(),
        }
    }

    /// Records an instantaneous gauge reading under `name`. The last write
    /// for a name wins; merging snapshots keeps the larger reading.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Adds `other`'s totals into `self`. Counter-wise sums and bucket-wise
    /// histogram merges — commutative, so parallel shards can be folded in
    /// any order and still equal the serial run.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
    }

    /// Sum of the two request-outcome counters (routed + blocked).
    pub fn total_requests(&self) -> u64 {
        self.counters.get("requests_routed").copied().unwrap_or(0)
            + self.counters.get("requests_blocked").copied().unwrap_or(0)
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4). Counters become `<prefix>_<name>_total`;
    /// histograms become the standard cumulative `_bucket{le="…"}` /
    /// `_sum` / `_count` triple with a closing `le="+Inf"` bucket; gauges
    /// are emitted bare. Every family carries `# HELP` / `# TYPE`
    /// metadata (help text from [`Counter::help`] / [`Hist::help`] when
    /// the name is part of the built-in taxonomy).
    pub fn prometheus(&self, prefix: &str) -> String {
        use std::fmt::Write as _;
        let counter_help: BTreeMap<&str, &str> =
            Counter::ALL.iter().map(|&c| (c.name(), c.help())).collect();
        let hist_help: BTreeMap<&str, &str> =
            Hist::ALL.iter().map(|&h| (h.name(), h.help())).collect();
        let mut out = String::new();
        for (name, value) in &self.counters {
            let help = counter_help
                .get(name.as_str())
                .copied()
                .unwrap_or("Event counter");
            let _ = writeln!(out, "# HELP {prefix}_{name}_total {help}");
            let _ = writeln!(out, "# TYPE {prefix}_{name}_total counter");
            let _ = writeln!(out, "{prefix}_{name}_total {value}");
        }
        for (name, value) in &self.gauges {
            let help = gauge_help(name);
            let _ = writeln!(out, "# HELP {prefix}_{name} {help}");
            let _ = writeln!(out, "# TYPE {prefix}_{name} gauge");
            let _ = writeln!(out, "{prefix}_{name} {value}");
        }
        for (name, h) in &self.histograms {
            let help = hist_help
                .get(name.as_str())
                .copied()
                .unwrap_or("Value distribution");
            let _ = writeln!(out, "# HELP {prefix}_{name} {help}");
            let _ = writeln!(out, "# TYPE {prefix}_{name} histogram");
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                let _ = writeln!(
                    out,
                    "{prefix}_{name}_bucket{{le=\"{}\"}} {cumulative}",
                    b.hi
                );
            }
            let _ = writeln!(out, "{prefix}_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{prefix}_{name}_sum {}", h.sum);
            let _ = writeln!(out, "{prefix}_{name}_count {}", h.count);
        }
        out
    }

    /// Short human-readable table of every non-zero metric.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<32} {:>14}", "counter", "total");
        for (name, value) in &self.counters {
            if *value > 0 {
                let _ = writeln!(out, "{name:<32} {value:>14}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<20} {:>10} {:>12} {:>12} {:>12} {:>12}",
                "histogram", "count", "mean", "p50", "p99", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<20} {:>10} {:>12.1} {:>12} {:>12} {:>12}",
                    name,
                    h.count,
                    h.mean(),
                    h.quantile(0.5).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.max
                );
            }
        }
        out
    }
}

/// Help text for the gauge names the daemon publishes. Gauges are set by
/// the embedding process (not drawn from an enum taxonomy), so unknown
/// names fall back to a generic line rather than failing the exposition.
fn gauge_help(name: &str) -> &'static str {
    match name {
        "serve_queue_depth" => "Requests waiting in the daemon admission queue",
        "serve_queue_capacity" => "Bounded capacity of the daemon admission queue",
        "serve_epoch" => "Provisioner epoch (bumped on every commit conflict)",
        "serve_workers" => "Worker threads in the daemon routing pool",
        "wal_seq" => "Highest journal sequence number appended to the WAL",
        "wal_checkpoint_seq" => "Journal sequence of the last durable checkpoint",
        "flight_records" => "Flight-recorder ring occupancy",
        "flight_anomaly_fired" => "1 once the flight anomaly trigger froze the ring",
        _ => "Instantaneous gauge reading",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample_sink(values: &[u64]) -> TelemetrySink {
        let sink = TelemetrySink::new();
        for &v in values {
            sink.add(Counter::RequestsRouted, 1);
            sink.observe(Hist::RouteCostMilli, v);
        }
        sink
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample_sink(&[1, 5, 900, 17, 17]).snapshot();
        let text = serde_json::to_string_pretty(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counters["requests_routed"], 5);
        assert_eq!(back.total_requests(), 5);
    }

    #[test]
    fn sharded_merge_equals_single_sink() {
        let all = [3u64, 9, 27, 81, 243, 729, 2187, 6561];
        let serial = sample_sink(&all).snapshot();
        let mut merged = TelemetrySnapshot::default();
        // Merge shards in a scrambled order: result must still match.
        for chunk in [&all[4..], &all[..2], &all[2..4]] {
            merged.merge(&sample_sink(chunk).snapshot());
        }
        assert_eq!(merged, serial);
    }

    #[test]
    fn quantiles_track_the_population() {
        let snap = sample_sink(&[1, 2, 3, 4, 1000]).snapshot();
        let h = &snap.histograms["route_cost_milli"];
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(1.0), Some(1000));
        assert!((h.mean() - 202.0).abs() < 1e-9);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let mut snap = sample_sink(&[1, 5, 900]).snapshot();
        snap.set_gauge("serve_queue_depth", 7);
        let text = snap.prometheus("wdm");
        assert!(text.contains("# HELP wdm_requests_routed_total "));
        assert!(text.contains("# TYPE wdm_requests_routed_total counter"));
        assert!(text.contains("# HELP wdm_route_cost_milli "));
        assert!(text.contains("# HELP wdm_serve_queue_depth "));
        assert!(text.contains("# TYPE wdm_serve_queue_depth gauge"));
        assert!(text.contains("wdm_serve_queue_depth 7"));
        // Every sample line is preceded by metadata for its family.
        for line in text.lines() {
            assert!(!line.is_empty());
        }
        assert!(text.contains("wdm_requests_routed_total 3"));
        assert!(text.contains("# TYPE wdm_route_cost_milli histogram"));
        assert!(text.contains("wdm_route_cost_milli_count 3"));
        assert!(text.contains("wdm_route_cost_milli_sum 906"));
        assert!(text.contains("wdm_route_cost_milli_bucket{le=\"+Inf\"} 3"));
        // Cumulative bucket counts are non-decreasing and end at count.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("wdm_route_cost_milli_bucket") {
                let v: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last);
                last = v;
            }
        }
        assert_eq!(last, 3);
    }

    #[test]
    fn gauges_round_trip_and_merge_keeps_the_larger_reading() {
        let mut a = sample_sink(&[4]).snapshot();
        a.set_gauge("wal_seq", 10);
        a.set_gauge("serve_epoch", 2);
        let text = serde_json::to_string(&a).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, a);

        let mut b = TelemetrySnapshot::default();
        b.set_gauge("wal_seq", 25);
        a.merge(&b);
        assert_eq!(a.gauges["wal_seq"], 25);
        assert_eq!(a.gauges["serve_epoch"], 2);
    }

    #[test]
    fn summary_lists_nonzero_metrics() {
        let snap = sample_sink(&[10]).snapshot();
        let text = snap.summary();
        assert!(text.contains("requests_routed"));
        assert!(text.contains("route_cost_milli"));
        assert!(!text.contains("requests_blocked"));
    }
}
