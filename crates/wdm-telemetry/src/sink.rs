//! The live [`Recorder`]: lock-free counters + histograms, optional trace
//! ring.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::AtomicHistogram;
use crate::snapshot::TelemetrySnapshot;
use crate::{Counter, Hist, Recorder, RouteTrace};

#[cfg(feature = "trace-log")]
const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// A concurrent telemetry accumulator.
///
/// Counters and histograms are plain atomics — safe to share across rayon
/// workers by reference (`&TelemetrySink` implements [`Recorder`]). With the
/// `trace-log` feature (default) the sink also keeps the most recent
/// [`RouteTrace`] events in a bounded ring behind a mutex; tracing is off
/// the simulator's measured path, so the lock only costs when traces are
/// actually emitted.
#[derive(Debug)]
pub struct TelemetrySink {
    counters: [AtomicU64; Counter::COUNT],
    hists: [AtomicHistogram; Hist::COUNT],
    next_request_id: AtomicU64,
    #[cfg(feature = "trace-log")]
    traces: std::sync::Mutex<TraceRing>,
}

#[cfg(feature = "trace-log")]
#[derive(Debug)]
struct TraceRing {
    capacity: usize,
    /// Insertion position for the next event once the ring is full.
    head: usize,
    events: Vec<RouteTrace>,
}

impl Default for TelemetrySink {
    fn default() -> Self {
        TelemetrySink::new()
    }
}

impl TelemetrySink {
    /// An empty sink (trace ring capacity 1024 when `trace-log` is on).
    pub fn new() -> Self {
        TelemetrySink {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| AtomicHistogram::default()),
            next_request_id: AtomicU64::new(0),
            #[cfg(feature = "trace-log")]
            traces: std::sync::Mutex::new(TraceRing {
                capacity: DEFAULT_TRACE_CAPACITY,
                head: 0,
                events: Vec::new(),
            }),
        }
    }

    /// An empty sink whose trace ring keeps at most `capacity` events.
    /// Without the `trace-log` feature the capacity is ignored.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        #[cfg(feature = "trace-log")]
        {
            let mut sink = TelemetrySink::new();
            sink.traces.get_mut().unwrap().capacity = capacity.max(1);
            sink
        }
        #[cfg(not(feature = "trace-log"))]
        {
            let _ = capacity;
            TelemetrySink::new()
        }
    }

    /// Current value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Read access to one histogram.
    pub fn histogram(&self, hist: Hist) -> &AtomicHistogram {
        &self.hists[hist as usize]
    }

    /// The retained trace events, oldest first. Empty without `trace-log`.
    pub fn traces(&self) -> Vec<RouteTrace> {
        #[cfg(feature = "trace-log")]
        {
            let ring = self.traces.lock().unwrap();
            if ring.events.len() < ring.capacity {
                ring.events.clone()
            } else {
                let mut out = Vec::with_capacity(ring.capacity);
                out.extend_from_slice(&ring.events[ring.head..]);
                out.extend_from_slice(&ring.events[..ring.head]);
                out
            }
        }
        #[cfg(not(feature = "trace-log"))]
        Vec::new()
    }

    /// Drains the current totals into an immutable, mergeable snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::from_sink(self)
    }
}

impl Recorder for TelemetrySink {
    #[inline]
    fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    fn observe(&self, hist: Hist, value: u64) {
        self.hists[hist as usize].record(value);
    }

    fn trace(&self, event: &RouteTrace) {
        #[cfg(feature = "trace-log")]
        {
            let mut ring = self.traces.lock().unwrap();
            if ring.events.len() < ring.capacity {
                ring.events.push(event.clone());
            } else {
                let head = ring.head;
                ring.events[head] = event.clone();
                ring.head = (head + 1) % ring.capacity;
            }
        }
        #[cfg(not(feature = "trace-log"))]
        let _ = event;
    }

    #[inline]
    fn next_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheOutcome;

    fn trace(id: u64) -> RouteTrace {
        RouteTrace {
            request_id: id,
            src: 0,
            dst: 1,
            primary_wavelengths: vec![0],
            backup_wavelengths: vec![1],
            primary_cost: 1.0,
            backup_cost: 1.0,
            cache: CacheOutcome::SkeletonReuse,
            arena_allocs: 0,
            search_ns: 10,
        }
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let sink = TelemetrySink::new();
        sink.add(Counter::RequestsRouted, 2);
        sink.add(Counter::RequestsRouted, 3);
        sink.observe(Hist::PrimaryHops, 4);
        assert_eq!(sink.counter(Counter::RequestsRouted), 5);
        assert_eq!(sink.histogram(Hist::PrimaryHops).count(), 1);
        assert!(sink.enabled());
    }

    #[test]
    fn request_ids_are_monotonic() {
        let sink = TelemetrySink::new();
        assert_eq!(sink.next_request_id(), 0);
        assert_eq!(sink.next_request_id(), 1);
        assert_eq!(sink.next_request_id(), 2);
    }

    #[test]
    fn shared_references_record_into_one_sink() {
        let sink = TelemetrySink::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = &sink;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.add(Counter::ThresholdProbes, 1);
                        r.observe(Hist::ThresholdProbes, 3);
                    }
                });
            }
        });
        assert_eq!(sink.counter(Counter::ThresholdProbes), 4000);
        assert_eq!(sink.histogram(Hist::ThresholdProbes).count(), 4000);
    }

    #[cfg(feature = "trace-log")]
    #[test]
    fn trace_ring_keeps_most_recent_events() {
        let sink = TelemetrySink::with_trace_capacity(3);
        for id in 0..5 {
            sink.trace(&trace(id));
        }
        let ids: Vec<u64> = sink.traces().iter().map(|t| t.request_id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[cfg(not(feature = "trace-log"))]
    #[test]
    fn traces_are_dropped_without_the_feature() {
        let sink = TelemetrySink::with_trace_capacity(3);
        sink.trace(&trace(0));
        assert!(sink.traces().is_empty());
    }
}
