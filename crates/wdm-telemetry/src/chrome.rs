//! Chrome `trace_event` export for span records.
//!
//! `chrome://tracing` (and Perfetto's legacy loader) consume a JSON object
//! with a `traceEvents` array of *complete* events — `"ph": "X"`, a start
//! timestamp `ts` and a duration `dur`, both in **microseconds**. Mapping
//! our spans onto it:
//!
//! * one process (`pid` 0) — the daemon;
//! * one track per request: `tid` is the span's request ordinal, so every
//!   request renders as its own row with the root span and the sub-phases
//!   stacked inside it;
//! * `name` is the stable [`Phase::name`] key, `cat` groups all of them
//!   under `wdm`.
//!
//! Fractional microseconds are kept (`ts`/`dur` accept doubles), so
//! nanosecond spans don't collapse to zero width.

use crate::span::SpanRecord;

/// Renders spans as a Chrome `trace_event` JSON document (the
/// `{"traceEvents": [...]}` object form), ready to load into
/// `chrome://tracing`.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = r.start_ns as f64 / 1e3;
        let dur = r.duration_ns() as f64 / 1e3;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"wdm\",\"ph\":\"X\",\"pid\":0,\
             \"tid\":{},\"ts\":{ts},\"dur\":{dur}}}",
            r.phase.name(),
            r.request,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    fn span(request: u64, phase: Phase, start_ns: u64, end_ns: u64) -> SpanRecord {
        SpanRecord {
            request,
            phase,
            start_ns,
            end_ns,
        }
    }

    fn number(v: &serde_json::Value) -> f64 {
        match v {
            serde_json::Value::Number(n) => n.as_f64(),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn export_is_valid_json_with_one_event_per_span() {
        let spans = [
            span(0, Phase::Request, 0, 5_000),
            span(0, Phase::QueueWait, 0, 1_500),
            span(1, Phase::WalFsync, 7_000, 7_250),
        ];
        let text = chrome_trace_json(&spans);
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        let first = &events[0];
        assert_eq!(first.get("name").and_then(|v| v.as_str()), Some("request"));
        assert_eq!(first.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(first.get("tid").map(number), Some(0.0));
        assert_eq!(first.get("ts").map(number), Some(0.0));
        assert_eq!(first.get("dur").map(number), Some(5.0));
        // Sub-microsecond spans keep fractional width.
        let dur = events[2].get("dur").map(number).expect("dur");
        assert!((dur - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_input_still_renders_a_loadable_document() {
        let text = chrome_trace_json(&[]);
        assert_eq!(text, "{\"traceEvents\":[]}");
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert!(doc.get("traceEvents").is_some());
    }
}
