//! Log-linear fixed-bucket histogram (HdrHistogram-style, no deps).
//!
//! Values below 8 get exact unit buckets; above that, each power-of-two
//! octave is split into 8 linear sub-buckets, bounding relative error at
//! 1/8 = 12.5 %. The full `u64` range maps into [`NUM_BUCKETS`] = 496
//! buckets, so a histogram is a flat atomic array — recording is one
//! relaxed `fetch_add` plus `fetch_min`/`fetch_max` for the extremes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Unit buckets for values `0..8`.
const LINEAR: usize = 8;
/// Sub-buckets per octave (3 mantissa bits kept).
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count: 8 unit buckets + 8 sub-buckets for each octave
/// `2^3 ..= 2^63`.
pub const NUM_BUCKETS: usize = LINEAR + (64 - SUB_BITS as usize) * SUB;

/// Maps a value to its bucket index.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR as u64 {
        return value as usize;
    }
    let oct = 63 - value.leading_zeros();
    let sub = ((value >> (oct - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    LINEAR + (oct - SUB_BITS) as usize * SUB + sub
}

/// Inclusive `[lo, hi]` value range covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < LINEAR {
        return (index as u64, index as u64);
    }
    let oct = SUB_BITS + ((index - LINEAR) / SUB) as u32;
    let sub = ((index - LINEAR) % SUB) as u64;
    let width = 1u64 << (oct - SUB_BITS);
    let lo = (SUB as u64 + sub) << (oct - SUB_BITS);
    (lo, lo + (width - 1))
}

/// A lock-free histogram: one atomic slot per bucket plus count/sum/min/max.
///
/// All updates use relaxed ordering — slots are independent monotonic
/// accumulators, and readers only observe them after a happens-before edge
/// (thread join / sink handoff).
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow, as `fetch_add` does).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Occupancy of bucket `index`.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_partition_the_u64_range() {
        // Buckets tile contiguously: each hi + 1 is the next lo.
        let mut expect_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} lo");
            assert!(hi >= lo);
            expect_lo = hi.wrapping_add(1);
        }
        assert_eq!(expect_lo, 0, "last bucket must end at u64::MAX");
    }

    #[test]
    fn index_and_bounds_agree() {
        let probes = [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            100,
            1_000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && v <= hi,
                "value {v} outside bucket {i} [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [8u64, 100, 5_000, 1 << 40] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = hi - lo + 1;
            assert!(width as f64 / lo as f64 <= 0.125 + 1e-12);
        }
    }

    #[test]
    fn record_accumulates() {
        let h = AtomicHistogram::default();
        for v in [3u64, 3, 900, 17] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 923);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 900);
        assert_eq!(h.bucket(bucket_index(3)), 2);
    }
}
