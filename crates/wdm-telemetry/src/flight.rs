//! Flight recorder: a bounded ring of per-request records.
//!
//! Aggregate counters say *how often* requests block or abort; the flight
//! recorder says *which* request, *what it asked for*, *where the time
//! went* (per-[`Phase`] breakdown from the span layer), and — crucially —
//! the **journal sequence number** current when the request was decided, so
//! `wdm replay` can reconstruct the exact working state the request saw.
//!
//! The ring keeps the last `capacity` requests (oldest dropped first, same
//! unroll discipline as the trace ring). On top of it sits a one-shot
//! **anomaly trigger**: a sliding window over the most recent requests'
//! blocked/aborted flags; when the count in the window crosses the
//! threshold, the recorder clones the ring *at that moment* into
//! [`FlightAnomaly`], so the pathological neighbourhood survives even if
//! the simulation runs on and the ring wraps past it.
//!
//! Unlike [`SpanBuffer`] (single-owner, `RefCell`), the recorder is a
//! shared sink (`Mutex`, `Send + Sync`): one instance can receive records
//! from the serial simulator and annotations from provisioners whose
//! find stage fans out across worker threads. Pushes are rare (one per
//! request) so the uncontended lock is noise.
//!
//! [`Phase`]: crate::Phase
//! [`SpanBuffer`]: crate::SpanBuffer

use crate::span::Phase;
use std::collections::VecDeque;

/// One request's flight record.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlightRecord {
    /// Request ordinal (the recorder's own running count).
    pub request: u64,
    /// Demand endpoints.
    pub src: u32,
    /// Demand endpoints.
    pub dst: u32,
    /// Policy name in force for this request.
    pub policy: String,
    /// Outcome: `"routed"`, `"blocked"`, `"aborted"`, ...
    pub outcome: String,
    /// Journal sequence number current when the request was decided: the
    /// number of events appended *before* this request's own. Replaying
    /// the journal's first `journal_seq` events reconstructs the exact
    /// working state the request saw.
    pub journal_seq: u64,
    /// Physical links touched by the provisioned route (0 when blocked).
    pub footprint_links: u32,
    /// Per-phase durations, indexed by `Phase as usize`.
    pub phase_ns: Vec<u64>,
    /// Total request latency (the root span).
    pub total_ns: u64,
    /// Speculative abort cause (`"conflict"`, `"ordering"`,
    /// `"load-shift"`) when the outcome is an abort.
    pub abort_cause: Option<String>,
}

impl FlightRecord {
    /// Whether this request failed to provision (blocked or aborted).
    pub fn is_negative(&self) -> bool {
        self.outcome != "routed"
    }

    /// Named per-phase durations (skipping zero entries and the root).
    pub fn named_phases(&self) -> Vec<(&'static str, u64)> {
        Phase::ALL
            .iter()
            .filter(|&&p| p != Phase::Request)
            .filter_map(|&p| {
                let ns = *self.phase_ns.get(p as usize)?;
                (ns > 0).then_some((p.name(), ns))
            })
            .collect()
    }
}

/// A free-form annotation correlated with the request stream (e.g. the
/// shared-backup pool reserving channels outside the journal's coverage).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlightAnnotation {
    /// Request ordinal current when the annotation was made.
    pub request: u64,
    /// Journal sequence number at annotation time.
    pub journal_seq: u64,
    /// What happened.
    pub note: String,
}

/// The ring's contents captured at the moment the anomaly trigger fired.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlightAnomaly {
    /// Request ordinal that tripped the trigger.
    pub at_request: u64,
    /// Sliding-window size in force.
    pub window: usize,
    /// Negative outcomes inside the window when it fired.
    pub negative: usize,
    /// Ring contents (oldest first) at trigger time.
    pub records: Vec<FlightRecord>,
}

/// Everything the recorder knows, serialisable into a trace file.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlightDump {
    /// Ring contents, oldest first.
    pub records: Vec<FlightRecord>,
    /// Annotations, in emission order (unbounded; annotations are rare).
    pub annotations: Vec<FlightAnnotation>,
    /// The anomaly snapshot, if the trigger fired.
    pub anomaly: Option<FlightAnomaly>,
    /// Total requests pushed over the recorder's lifetime.
    pub total_requests: u64,
    /// Requests dropped off the ring's tail.
    pub dropped: u64,
}

#[derive(Debug)]
struct FlightInner {
    capacity: usize,
    head: usize,
    records: Vec<FlightRecord>,
    window: VecDeque<bool>,
    window_size: usize,
    threshold: usize,
    anomaly: Option<FlightAnomaly>,
    annotations: Vec<FlightAnnotation>,
    total_pushed: u64,
}

impl FlightInner {
    /// Ring contents, oldest first (same unroll as the trace ring).
    fn unrolled(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.records.len());
        out.extend_from_slice(&self.records[self.head..]);
        out.extend_from_slice(&self.records[..self.head]);
        out
    }
}

/// Bounded per-request flight recorder with a one-shot anomaly trigger.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: std::sync::Mutex<FlightInner>,
}

/// Default ring capacity.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;
/// Default anomaly sliding-window size.
pub const DEFAULT_ANOMALY_WINDOW: usize = 64;
/// Default negative-outcome threshold within the window.
pub const DEFAULT_ANOMALY_THRESHOLD: usize = 32;

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default capacity and anomaly tuning.
    pub fn new() -> Self {
        Self::with_config(
            DEFAULT_FLIGHT_CAPACITY,
            DEFAULT_ANOMALY_WINDOW,
            DEFAULT_ANOMALY_THRESHOLD,
        )
    }

    /// A recorder keeping the last `capacity` requests, firing the anomaly
    /// trigger when `threshold` of the last `window_size` requests were
    /// negative. `capacity` and `window_size` are clamped to at least 1.
    pub fn with_config(capacity: usize, window_size: usize, threshold: usize) -> Self {
        FlightRecorder {
            inner: std::sync::Mutex::new(FlightInner {
                capacity: capacity.max(1),
                head: 0,
                records: Vec::new(),
                window: VecDeque::new(),
                window_size: window_size.max(1),
                threshold: threshold.max(1),
                anomaly: None,
                annotations: Vec::new(),
                total_pushed: 0,
            }),
        }
    }

    /// Appends a record, evicting the oldest when full, and runs the
    /// anomaly trigger.
    pub fn push(&self, record: FlightRecord) {
        let mut b = self.inner.lock().unwrap();
        let negative = record.is_negative();

        if b.records.len() < b.capacity {
            b.records.push(record);
        } else {
            let head = b.head;
            b.records[head] = record;
            b.head = (head + 1) % b.capacity;
        }
        b.total_pushed += 1;

        b.window.push_back(negative);
        if b.window.len() > b.window_size {
            b.window.pop_front();
        }
        if b.anomaly.is_none() && b.window.len() == b.window_size {
            let count = b.window.iter().filter(|&&n| n).count();
            if count >= b.threshold {
                b.anomaly = Some(FlightAnomaly {
                    at_request: b.total_pushed - 1,
                    window: b.window_size,
                    negative: count,
                    records: b.unrolled(),
                });
            }
        }
    }

    /// Records a correlation note at the current request/journal position.
    pub fn annotate(&self, journal_seq: u64, note: impl Into<String>) {
        let mut b = self.inner.lock().unwrap();
        let request = b.total_pushed;
        b.annotations.push(FlightAnnotation {
            request,
            journal_seq,
            note: note.into(),
        });
    }

    /// Total requests pushed over the recorder's lifetime.
    pub fn total_requests(&self) -> u64 {
        self.inner.lock().unwrap().total_pushed
    }

    /// Whether the anomaly trigger has fired.
    pub fn anomaly_fired(&self) -> bool {
        self.inner.lock().unwrap().anomaly.is_some()
    }

    /// Snapshots everything into a serialisable dump.
    pub fn dump(&self) -> FlightDump {
        let b = self.inner.lock().unwrap();
        FlightDump {
            records: b.unrolled(),
            annotations: b.annotations.clone(),
            anomaly: b.anomaly.clone(),
            total_requests: b.total_pushed,
            dropped: b.total_pushed - b.records.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(request: u64, outcome: &str) -> FlightRecord {
        FlightRecord {
            request,
            src: 0,
            dst: 1,
            policy: "joint".into(),
            outcome: outcome.into(),
            journal_seq: request * 2,
            footprint_links: if outcome == "routed" { 4 } else { 0 },
            phase_ns: vec![100, 10, 20, 30, 5, 15, 5, 0],
            total_ns: 100,
            abort_cause: (outcome == "aborted").then(|| "conflict".into()),
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_records_oldest_first() {
        let fr = FlightRecorder::with_config(3, 8, 8);
        for i in 0..5 {
            fr.push(record(i, "routed"));
        }
        let dump = fr.dump();
        let ids: Vec<u64> = dump.records.iter().map(|r| r.request).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(dump.total_requests, 5);
        assert_eq!(dump.dropped, 2);
        assert!(dump.anomaly.is_none());
    }

    #[test]
    fn anomaly_trigger_fires_once_and_snapshots_the_ring() {
        let fr = FlightRecorder::with_config(4, 4, 2);
        fr.push(record(0, "routed"));
        fr.push(record(1, "blocked"));
        fr.push(record(2, "routed"));
        assert!(!fr.anomaly_fired()); // window not yet full
        fr.push(record(3, "blocked"));
        assert!(fr.anomaly_fired());
        let snap = fr.dump().anomaly.unwrap();
        assert_eq!(snap.at_request, 3);
        assert_eq!(snap.negative, 2);
        assert_eq!(snap.records.len(), 4);

        // One-shot: a later, worse window doesn't replace the snapshot.
        for i in 4..10 {
            fr.push(record(i, "blocked"));
        }
        assert_eq!(fr.dump().anomaly.unwrap().at_request, 3);
    }

    #[test]
    fn annotations_carry_stream_position() {
        let fr = FlightRecorder::new();
        fr.push(record(0, "routed"));
        fr.annotate(7, "pool_reserve conn=0 channels=2");
        let dump = fr.dump();
        assert_eq!(dump.annotations.len(), 1);
        assert_eq!(dump.annotations[0].request, 1);
        assert_eq!(dump.annotations[0].journal_seq, 7);
    }

    #[test]
    fn dump_round_trips_through_json() {
        let fr = FlightRecorder::with_config(2, 2, 1);
        fr.push(record(0, "routed"));
        fr.push(record(1, "aborted"));
        let dump = fr.dump();
        let text = serde_json::to_string(&dump).unwrap();
        let back: FlightDump = serde_json::from_str(&text).unwrap();
        assert_eq!(back, dump);
        assert_eq!(back.records[1].abort_cause.as_deref(), Some("conflict"));
        assert!(back.anomaly.is_some());
    }

    #[test]
    fn named_phases_skip_root_and_zeros() {
        let r = record(0, "routed");
        let named = r.named_phases();
        assert!(named.iter().all(|&(n, _)| n != "request"));
        assert!(named.iter().all(|&(_, ns)| ns > 0));
        assert_eq!(named.len(), 6);
    }
}
