//! Hierarchical phase spans for the routing pipeline.
//!
//! A [`Tracer`] is the per-request timing sibling of [`Recorder`]: the
//! routing stack is generic over `T: Tracer`, the default [`NoopTracer`]
//! monomorphises every span site away (verified by the A/B criterion bench
//! next to `ctx_noop`/`ctx_telemetry`), and the live [`SpanBuffer`] records
//! closed spans into a lock-free single-owner buffer.
//!
//! The span model is deliberately flat: a *root* span per request
//! ([`Phase::Request`], recorded by the driving loop) plus non-overlapping
//! *sub-phase* spans recorded inside it by the pipeline (auxiliary-graph
//! refresh, the two Suurballe passes, physical map-back, Lemma 2
//! refinement, commit/abort). Because sub-phases nest inside the root and
//! never overlap each other, their durations sum to at most the root's, and
//! the residual `root − Σ sub` is the pipeline's unattributed overhead —
//! `wdm trace analyze` reports exactly this decomposition.
//!
//! Timestamps come from an injectable monotonic [`Clock`]; production code
//! uses [`MonotonicClock`] (an `Instant` origin) while tests drive a
//! [`ManualClock`] so phase arithmetic is exact.
//!
//! Concurrency model: a `SpanBuffer` is owned by one worker (interior
//! `RefCell`, `Send` but not `Sync` — no atomics on the record path).
//! `Clone` produces an *empty* buffer sharing the clock domain — the
//! worker-fork semantics `RouterCtx::fork` relies on — and
//! [`SpanBuffer::absorb`] folds a worker's records back in, renumbering
//! request ordinals so absorbing worker buffers in worker order reproduces
//! the serial record stream.
//!
//! [`Recorder`]: crate::Recorder

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The traced phases of one request, in pipeline order.
///
/// The discriminant is the array index (as for [`crate::Counter`]);
/// [`Phase::ALL`] and [`Phase::name`] keep layout and key space in one
/// place. [`Phase::Request`] is the root span; everything else is a
/// sub-phase recorded inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[repr(usize)]
pub enum Phase {
    /// Root span: the whole request, routing plus commit.
    Request,
    /// Auxiliary-graph engine sync (skeleton build / dirty refresh).
    AuxRefresh,
    /// Suurballe pass 1: shortest path on the enabled skeleton.
    SuurballeP1,
    /// Suurballe pass 2: residual build + second path + decomposition.
    SuurballeP2,
    /// Mapping auxiliary paths back to physical edges.
    MapBack,
    /// Lemma 2 / Liang–Shen wavelength refinement of both legs.
    Refine,
    /// Committing the route (occupy + journal append).
    Commit,
    /// Speculative abort: a window result discarded by the commit rules.
    Abort,
    /// Daemon: reading and validating the request off the socket — the
    /// admission decision for this request's routing work.
    Admission,
    /// Daemon: time spent in the bounded admission queue before a worker
    /// picked the request up.
    QueueWait,
    /// Daemon: waiting to acquire the shared provisioner lock (read lock
    /// before routing plus write lock before commit).
    LockAcquire,
    /// Daemon: the warm-context epoch check under the read lock (and the
    /// context invalidation it forces after a rollback).
    EpochCheck,
    /// Daemon: appending the journal event to the WAL and flushing it.
    WalFsync,
    /// Daemon: a conflicted optimistic commit — atomic rollback plus the
    /// re-route and re-commit under the write lock.
    Rollback,
    /// Daemon: serialising the response and writing it to the socket.
    Respond,
    /// Recorder bookkeeping on the request's own thread: structured route
    /// trace assembly and histogram updates after the routing decision.
    Telemetry,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 16;

    /// Every variant, in index order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Request,
        Phase::AuxRefresh,
        Phase::SuurballeP1,
        Phase::SuurballeP2,
        Phase::MapBack,
        Phase::Refine,
        Phase::Commit,
        Phase::Abort,
        Phase::Admission,
        Phase::QueueWait,
        Phase::LockAcquire,
        Phase::EpochCheck,
        Phase::WalFsync,
        Phase::Rollback,
        Phase::Respond,
        Phase::Telemetry,
    ];

    /// Stable snake_case key used in trace files and analysis output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Request => "request",
            Phase::AuxRefresh => "aux_refresh",
            Phase::SuurballeP1 => "suurballe_p1",
            Phase::SuurballeP2 => "suurballe_p2",
            Phase::MapBack => "map_back",
            Phase::Refine => "refine",
            Phase::Commit => "commit",
            Phase::Abort => "abort",
            Phase::Admission => "admission",
            Phase::QueueWait => "queue_wait",
            Phase::LockAcquire => "lock_acquire",
            Phase::EpochCheck => "epoch_check",
            Phase::WalFsync => "wal_fsync",
            Phase::Rollback => "rollback",
            Phase::Respond => "respond",
            Phase::Telemetry => "telemetry",
        }
    }
}

/// A monotonic nanosecond time source. Injectable so span arithmetic is
/// testable with exact, hand-advanced timestamps.
pub trait Clock {
    /// Nanoseconds since this clock's origin (monotonic, never decreases).
    fn now_ns(&self) -> u64;
}

/// The production clock: nanoseconds since an `Instant` origin captured at
/// construction. `Copy`, so forked buffers share one time domain.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-driven test clock. Clones share the underlying cell, so a test
/// can advance time while a buffer (or a forked worker's buffer) reads it.
#[derive(Debug, Clone, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// A clock at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One closed span: a phase interval attributed to a request ordinal.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanRecord {
    /// Request ordinal within the recording buffer (0-based, assigned by
    /// [`Tracer::begin_request`]; renumbered on [`SpanBuffer::absorb`]).
    pub request: u64,
    /// The phase this span times.
    pub phase: Phase,
    /// Clock reading when the phase started.
    pub start_ns: u64,
    /// Clock reading when the phase ended (`>= start_ns`).
    pub end_ns: u64,
}

impl SpanRecord {
    /// The span's duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// The span-recording interface the routing stack is generic over.
///
/// Call sites follow the [`Recorder`] discipline: gate span bookkeeping on
/// [`Tracer::enabled`], take a start stamp with [`Tracer::now_ns`] (0 when
/// disabled) and close the span with [`Tracer::record`], which stamps the
/// end internally. The [`NoopTracer`] default compiles all of it away.
///
/// [`Recorder`]: crate::Recorder
pub trait Tracer {
    /// Whether spans are recorded at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Current clock reading (0 when disabled).
    fn now_ns(&self) -> u64;

    /// Opens the next request ordinal; subsequent spans attach to it.
    fn begin_request(&self);

    /// Closes a span for the current request: `phase` ran from `start_ns`
    /// until now.
    fn record(&self, phase: Phase, start_ns: u64);

    /// Closes a span for an earlier request: `back = 0` is the latest begun
    /// request, `back = 1` the one before it, and so on. The speculative
    /// commit loop uses this to attribute commit/abort spans to window
    /// members after their routing spans were absorbed.
    fn record_earlier(&self, back: u64, phase: Phase, start_ns: u64);

    /// Closes a span for the current request with both endpoints supplied
    /// by the caller (clamped so `end_ns >= start_ns`). The daemon uses
    /// this to carve non-overlapping intervals out of one measured stretch
    /// — e.g. splitting a commit into its occupy part and the WAL flush —
    /// and to backfill spans that ended before the request was begun
    /// (queue wait).
    fn record_span(&self, phase: Phase, start_ns: u64, end_ns: u64);

    /// Per-phase duration totals of the latest begun request, indexed by
    /// `Phase as usize` (all zeros when disabled). Only meaningful while
    /// the latest request's records are still the buffer tail (the serial
    /// simulator's case).
    fn last_request_phases(&self) -> [u64; Phase::COUNT];

    /// An empty child tracer for a fan-out worker, on the same clock
    /// domain; fold the child's spans back with
    /// [`Tracer::absorb_worker`]. Noop tracers fork noops.
    fn fork_worker(&self) -> Self
    where
        Self: Sized;

    /// Drains `child`'s spans into `self`, renumbering the child's
    /// request ordinals to follow `self`'s. Absorbing contiguous-chunk
    /// workers in worker order reproduces the serial record stream.
    fn absorb_worker(&self, child: &Self)
    where
        Self: Sized;
}

/// The zero-cost default: every method is an empty `#[inline(always)]`
/// body, so code generic over `T: Tracer` monomorphised with this type
/// carries no span instrumentation at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn now_ns(&self) -> u64 {
        0
    }

    #[inline(always)]
    fn begin_request(&self) {}

    #[inline(always)]
    fn record(&self, _phase: Phase, _start_ns: u64) {}

    #[inline(always)]
    fn record_earlier(&self, _back: u64, _phase: Phase, _start_ns: u64) {}

    #[inline(always)]
    fn record_span(&self, _phase: Phase, _start_ns: u64, _end_ns: u64) {}

    #[inline(always)]
    fn last_request_phases(&self) -> [u64; Phase::COUNT] {
        [0; Phase::COUNT]
    }

    #[inline(always)]
    fn fork_worker(&self) -> Self {
        NoopTracer
    }

    #[inline(always)]
    fn absorb_worker(&self, _child: &Self) {}
}

/// Shared references trace through the underlying tracer, mirroring the
/// blanket `&R: Recorder` impl.
impl<T: Tracer + ?Sized> Tracer for &T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }

    #[inline]
    fn begin_request(&self) {
        (**self).begin_request();
    }

    #[inline]
    fn record(&self, phase: Phase, start_ns: u64) {
        (**self).record(phase, start_ns);
    }

    #[inline]
    fn record_earlier(&self, back: u64, phase: Phase, start_ns: u64) {
        (**self).record_earlier(back, phase, start_ns);
    }

    #[inline]
    fn record_span(&self, phase: Phase, start_ns: u64, end_ns: u64) {
        (**self).record_span(phase, start_ns, end_ns);
    }

    #[inline]
    fn last_request_phases(&self) -> [u64; Phase::COUNT] {
        (**self).last_request_phases()
    }

    /// Forks by *sharing* the underlying tracer: spans land directly on
    /// it, so [`Tracer::absorb_worker`] has nothing to fold back. Sound
    /// only where sharing is — `&SpanBuffer` is not `Send`, so threaded
    /// fan-outs reject a shared buffer at compile time.
    #[inline]
    fn fork_worker(&self) -> Self {
        self
    }

    #[inline]
    fn absorb_worker(&self, _child: &Self) {}
}

#[derive(Debug, Default)]
struct SpanInner {
    /// Number of `begin_request` calls; the current request is `begun - 1`.
    begun: u64,
    records: Vec<SpanRecord>,
}

/// The live [`Tracer`]: a single-owner span buffer.
///
/// Interior mutability is a `RefCell` — recording is a bounds check and a
/// `Vec` push, no atomics — so the buffer is `Send` (a worker can own it)
/// but not `Sync` (two threads cannot share one; give each worker a
/// [`Clone`], which starts empty, and [`SpanBuffer::absorb`] the workers
/// back in worker order).
#[derive(Debug)]
pub struct SpanBuffer<C: Clock = MonotonicClock> {
    clock: C,
    inner: RefCell<SpanInner>,
}

impl SpanBuffer<MonotonicClock> {
    /// An empty buffer on a fresh monotonic clock.
    pub fn new() -> Self {
        Self::with_clock(MonotonicClock::default())
    }
}

impl Default for SpanBuffer<MonotonicClock> {
    fn default() -> Self {
        Self::new()
    }
}

/// Worker-fork semantics: a clone shares the clock domain but starts with
/// an empty buffer and a fresh request ordinal space.
impl<C: Clock + Clone> Clone for SpanBuffer<C> {
    fn clone(&self) -> Self {
        SpanBuffer {
            clock: self.clock.clone(),
            inner: RefCell::new(SpanInner::default()),
        }
    }
}

impl<C: Clock> SpanBuffer<C> {
    /// An empty buffer reading timestamps from `clock`.
    pub fn with_clock(clock: C) -> Self {
        SpanBuffer {
            clock,
            inner: RefCell::new(SpanInner::default()),
        }
    }

    /// The clock this buffer stamps spans with.
    pub fn clock(&self) -> &C {
        &self.clock
    }

    /// Number of requests begun so far.
    pub fn requests_begun(&self) -> u64 {
        self.inner.borrow().begun
    }

    /// A copy of every recorded span, in recording order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.borrow().records.clone()
    }

    /// Drains the buffer, returning every recorded span and resetting the
    /// ordinal space.
    pub fn take_records(&self) -> Vec<SpanRecord> {
        let mut b = self.inner.borrow_mut();
        b.begun = 0;
        std::mem::take(&mut b.records)
    }

    /// Folds `other`'s records into `self`, renumbering `other`'s request
    /// ordinals to follow `self`'s, and drains `other`. Absorbing worker
    /// buffers in worker order (with contiguous chunk assignment, as
    /// `fan_out` does) therefore yields the same record stream as running
    /// the workers' requests serially on `self`.
    pub fn absorb(&self, other: &Self) {
        let (theirs, begun) = {
            let mut o = other.inner.borrow_mut();
            let begun = o.begun;
            o.begun = 0;
            (std::mem::take(&mut o.records), begun)
        };
        let mut b = self.inner.borrow_mut();
        let offset = b.begun;
        b.records.extend(theirs.into_iter().map(|mut r| {
            r.request += offset;
            r
        }));
        b.begun += begun;
    }
}

impl<C: Clock + Clone> Tracer for SpanBuffer<C> {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    fn fork_worker(&self) -> Self {
        self.clone()
    }

    fn absorb_worker(&self, child: &Self) {
        self.absorb(child);
    }

    fn begin_request(&self) {
        self.inner.borrow_mut().begun += 1;
    }

    fn record(&self, phase: Phase, start_ns: u64) {
        self.record_earlier(0, phase, start_ns);
    }

    fn record_earlier(&self, back: u64, phase: Phase, start_ns: u64) {
        let end_ns = self.clock.now_ns().max(start_ns);
        let mut b = self.inner.borrow_mut();
        let Some(request) = b.begun.checked_sub(1 + back) else {
            return; // span outside any begun request: dropped
        };
        b.records.push(SpanRecord {
            request,
            phase,
            start_ns,
            end_ns,
        });
    }

    fn record_span(&self, phase: Phase, start_ns: u64, end_ns: u64) {
        let mut b = self.inner.borrow_mut();
        let Some(request) = b.begun.checked_sub(1) else {
            return; // span outside any begun request: dropped
        };
        b.records.push(SpanRecord {
            request,
            phase,
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
    }

    fn last_request_phases(&self) -> [u64; Phase::COUNT] {
        let b = self.inner.borrow();
        let mut out = [0u64; Phase::COUNT];
        let Some(current) = b.begun.checked_sub(1) else {
            return out;
        };
        for r in b.records.iter().rev() {
            if r.request != current {
                break;
            }
            out[r.phase as usize] += r.duration_ns();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_unique_and_match_layout() {
        let mut seen = std::collections::HashSet::new();
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
            assert!(seen.insert(p.name()), "duplicate name {}", p.name());
        }
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
    }

    #[test]
    fn noop_tracer_is_disabled() {
        let t = NoopTracer;
        assert!(!t.enabled());
        assert_eq!(t.now_ns(), 0);
        t.begin_request();
        t.record(Phase::Request, 0);
        assert_eq!(t.last_request_phases(), [0; Phase::COUNT]);
        // And through the blanket `&T` impl.
        let by_ref: &dyn Tracer = &&t;
        assert!(!by_ref.enabled());
    }

    #[test]
    fn spans_attach_to_the_current_request() {
        let clock = ManualClock::new();
        let buf = SpanBuffer::with_clock(clock.clone());
        assert!(buf.enabled());

        buf.begin_request();
        let t0 = buf.now_ns();
        clock.advance(10);
        buf.record(Phase::AuxRefresh, t0);

        buf.begin_request();
        let t1 = buf.now_ns();
        clock.advance(5);
        buf.record(Phase::Refine, t1);

        let recs = buf.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].request, 0);
        assert_eq!(recs[0].duration_ns(), 10);
        assert_eq!(recs[1].request, 1);
        assert_eq!(recs[1].phase, Phase::Refine);
        assert_eq!(buf.requests_begun(), 2);
    }

    #[test]
    fn record_earlier_targets_prior_ordinals() {
        let clock = ManualClock::new();
        let buf = SpanBuffer::with_clock(clock.clone());
        buf.begin_request();
        buf.begin_request();
        buf.begin_request();
        let t = buf.now_ns();
        clock.advance(3);
        buf.record_earlier(2, Phase::Commit, t);
        buf.record_earlier(0, Phase::Abort, t);
        // A `back` beyond the begun count is dropped, not wrapped.
        buf.record_earlier(9, Phase::Commit, t);
        let recs = buf.records();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].request, recs[0].phase), (0, Phase::Commit));
        assert_eq!((recs[1].request, recs[1].phase), (2, Phase::Abort));
    }

    #[test]
    fn record_span_takes_explicit_intervals() {
        let clock = ManualClock::new();
        let buf = SpanBuffer::with_clock(clock.clone());
        // Outside any request: dropped, like record_earlier.
        buf.record_span(Phase::QueueWait, 0, 10);
        assert!(buf.records().is_empty());

        buf.begin_request();
        clock.advance(100);
        // Backfilled span that ended before "now"; and a clamped one.
        buf.record_span(Phase::QueueWait, 10, 40);
        buf.record_span(Phase::WalFsync, 50, 30);
        let recs = buf.records();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].start_ns, recs[0].end_ns), (10, 40));
        assert_eq!(recs[0].duration_ns(), 30);
        assert_eq!((recs[1].start_ns, recs[1].end_ns), (50, 50), "clamped");
        let phases = buf.last_request_phases();
        assert_eq!(phases[Phase::QueueWait as usize], 30);
    }

    #[test]
    fn phase_durations_sum_exactly_to_the_root_span() {
        // The satellite contract: under the injectable clock, sub-phase
        // durations plus the unattributed residual equal the root exactly.
        let clock = ManualClock::new();
        let buf = SpanBuffer::with_clock(clock.clone());
        buf.begin_request();
        let root_start = buf.now_ns();

        let sub = [
            (Phase::AuxRefresh, 7u64),
            (Phase::SuurballeP1, 11),
            (Phase::SuurballeP2, 13),
            (Phase::MapBack, 3),
            (Phase::Refine, 17),
            (Phase::Commit, 2),
        ];
        for &(phase, ns) in &sub {
            let t = buf.now_ns();
            clock.advance(ns);
            buf.record(phase, t);
            clock.advance(1); // unattributed gap between phases
        }
        buf.record(Phase::Request, root_start);

        let phases = buf.last_request_phases();
        let total = phases[Phase::Request as usize];
        let sub_sum: u64 = Phase::ALL
            .iter()
            .filter(|&&p| p != Phase::Request)
            .map(|&p| phases[p as usize])
            .sum();
        let expected_sub: u64 = sub.iter().map(|&(_, ns)| ns).sum();
        assert_eq!(sub_sum, expected_sub);
        assert_eq!(total, expected_sub + sub.len() as u64); // + the gaps
        assert_eq!(sub_sum + sub.len() as u64, total, "sub + residual = root");
    }

    #[test]
    fn clone_is_empty_and_absorb_renumbers() {
        let clock = ManualClock::new();
        let parent = SpanBuffer::with_clock(clock.clone());
        parent.begin_request();
        parent.record(Phase::Request, 0);

        let worker = parent.clone();
        assert_eq!(worker.requests_begun(), 0);
        assert!(worker.records().is_empty());

        worker.begin_request();
        clock.advance(4);
        worker.record(Phase::Request, 0);
        worker.begin_request();
        worker.record(Phase::Refine, 2);

        parent.absorb(&worker);
        assert_eq!(worker.requests_begun(), 0);
        assert!(worker.records().is_empty());
        assert_eq!(parent.requests_begun(), 3);
        let recs = parent.records();
        let ordinals: Vec<u64> = recs.iter().map(|r| r.request).collect();
        assert_eq!(ordinals, vec![0, 1, 2]);
    }

    #[test]
    fn span_record_round_trips_through_json() {
        let r = SpanRecord {
            request: 5,
            phase: Phase::SuurballeP2,
            start_ns: 100,
            end_ns: 250,
        };
        let text = serde_json::to_string(&r).unwrap();
        let back: SpanRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.duration_ns(), 150);
    }
}
