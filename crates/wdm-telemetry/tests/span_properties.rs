//! Property tests for the span layer's fork/absorb contract: replaying an
//! arbitrary request stream through forked worker buffers (contiguous
//! chunks, absorbed in worker order) yields the *identical* record stream —
//! ordinals, phases, and timestamps — as recording the whole stream
//! serially on one buffer. This is the invariant the speculative batch
//! engine's per-round `absorb_worker` loop relies on to keep trace files
//! independent of the parallel window size.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use wdm_telemetry::{ManualClock, Phase, SpanBuffer, Tracer};

/// A generated request: its sub-phase spans as (phase index, duration,
/// trailing unattributed gap).
type GenRequest = Vec<(usize, u64, u64)>;

/// Sub-phases only (index 1..8); the root span is recorded by the replay.
fn requests() -> impl Strategy<Value = Vec<GenRequest>> {
    pvec(
        pvec((1usize..Phase::COUNT, 0u64..1_000, 0u64..10), 0..6),
        0..24,
    )
}

/// Replays `chunk` onto `buf`: for each request, a root span wrapping its
/// sub-phases, with the shared manual clock advanced by each duration.
fn replay(buf: &SpanBuffer<ManualClock>, clock: &ManualClock, chunk: &[GenRequest]) {
    for request in chunk {
        buf.begin_request();
        let root_start = buf.now_ns();
        for &(phase_idx, duration, gap) in request {
            let t = buf.now_ns();
            clock.advance(duration);
            buf.record(Phase::ALL[phase_idx], t);
            clock.advance(gap);
        }
        buf.record(Phase::Request, root_start);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    #[test]
    fn absorbed_worker_chunks_reproduce_the_serial_stream(
        stream in requests(),
        chunk_size in 1usize..9,
    ) {
        // Serial reference: one buffer records every request in order.
        let serial_clock = ManualClock::new();
        let serial = SpanBuffer::with_clock(serial_clock.clone());
        replay(&serial, &serial_clock, &stream);

        // Parallel shape: the stream split into contiguous chunks, each
        // replayed on a forked worker, workers absorbed in chunk order —
        // exactly the speculative engine's per-round discipline.
        let par_clock = ManualClock::new();
        let parent = SpanBuffer::with_clock(par_clock.clone());
        let workers: Vec<SpanBuffer<ManualClock>> = stream
            .chunks(chunk_size.max(1))
            .map(|chunk| {
                let worker = parent.fork_worker();
                prop_assert!(worker.records().is_empty(), "forks start empty");
                replay(&worker, &par_clock, chunk);
                Ok(worker)
            })
            .collect::<Result<_, TestCaseError>>()?;
        for worker in &workers {
            parent.absorb_worker(worker);
            prop_assert_eq!(worker.requests_begun(), 0, "absorb drains the worker");
            prop_assert!(worker.records().is_empty(), "absorb drains the worker");
        }

        prop_assert_eq!(parent.requests_begun(), stream.len() as u64);
        // Bit-identical streams: absorb's ordinal renumbering plus the
        // shared clock domain make the merged buffer indistinguishable
        // from the serial one, timestamps included.
        prop_assert_eq!(parent.records(), serial.records());
    }

    #[test]
    fn last_request_phases_sums_sub_phases_of_the_tail(stream in requests()) {
        let clock = ManualClock::new();
        let buf = SpanBuffer::with_clock(clock.clone());
        replay(&buf, &clock, &stream);
        let phases = buf.last_request_phases();
        match stream.last() {
            None => prop_assert_eq!(phases, [0; Phase::COUNT]),
            Some(last) => {
                let mut expected = [0u64; Phase::COUNT];
                for &(phase_idx, duration, gap) in last {
                    expected[phase_idx] += duration;
                    expected[Phase::Request as usize] += duration + gap;
                }
                prop_assert_eq!(phases, expected);
            }
        }
    }
}
