//! Property tests for histogram snapshots: quantile sanity (monotone in
//! `q`, bounded by the observed extremes, exact at both ends) and shard
//! merging (commutative and associative, so any merge order over any
//! partition equals the single-sink snapshot) — including populations that
//! hit value 0, `u64::MAX`, and the overflow bucket.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use wdm_telemetry::{Counter, Hist, Recorder, TelemetrySink, TelemetrySnapshot};

fn sink_with(values: &[u64]) -> TelemetrySink {
    let sink = TelemetrySink::new();
    for &v in values {
        sink.add(Counter::RequestsRouted, 1);
        sink.observe(Hist::RouteCostMilli, v);
    }
    sink
}

/// Populations biased toward the interesting edges: 0, u64::MAX, and the
/// overflow (last) bucket, alongside ordinary values.
fn population() -> impl Strategy<Value = Vec<u64>> {
    pvec(
        prop_oneof![
            Just(0u64),
            Just(u64::MAX),
            Just(u64::MAX - 1),
            Just(15u64 << 60), // lowest value of the overflow bucket
            0u64..10_000,
            any::<u64>(),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    #[test]
    fn quantile_is_monotone_and_bounded(values in population()) {
        let snap = sink_with(&values).snapshot();
        let h = &snap.histograms["route_cost_milli"];
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();

        let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let mut prev = None;
        for &q in &grid {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= lo, "q{q}: {v} below min {lo}");
            prop_assert!(v <= hi, "q{q}: {v} above max {hi}");
            if let Some(p) = prev {
                prop_assert!(v >= p, "quantile not monotone at q{q}: {v} < {p}");
            }
            prev = Some(v);
        }
        // Both ends are exact regardless of bucket width.
        prop_assert_eq!(h.quantile(1.0), Some(hi));
        // q=0 resolves to rank 1: the first occupied bucket, which holds
        // the minimum — so the answer is within that bucket's width of it.
        let q0 = h.quantile(0.0).unwrap();
        prop_assert!(q0 >= lo && q0 <= hi);
    }

    #[test]
    fn shard_merges_match_single_sink(
        values in population(),
        cuts in pvec(0usize..40, 0..4),
        reverse in any::<bool>(),
    ) {
        let serial = sink_with(&values).snapshot();

        // Partition the population at the (sorted, clamped) cut points.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c.min(values.len())).collect();
        bounds.push(0);
        bounds.push(values.len());
        bounds.sort_unstable();
        let mut shards: Vec<&[u64]> = bounds
            .windows(2)
            .map(|w| &values[w[0]..w[1]])
            .collect();
        if reverse {
            shards.reverse(); // commutativity: order must not matter
        }

        // Left fold (((a ∪ b) ∪ c) ∪ d)…
        let mut left = TelemetrySnapshot::default();
        for shard in &shards {
            left.merge(&sink_with(shard).snapshot());
        }
        prop_assert_eq!(&left, &serial);

        // …and a right-associated fold (a ∪ (b ∪ (c ∪ d))).
        let mut right = TelemetrySnapshot::default();
        for shard in shards.iter().rev() {
            let mut acc = sink_with(shard).snapshot();
            acc.merge(&right);
            right = acc;
        }
        prop_assert_eq!(&right, &serial);
    }
}

#[test]
fn overflow_bucket_quantile_is_exact_at_the_top() {
    // All mass in the overflow bucket: every quantile must report a value
    // inside [min, max] even though the bucket spans up to u64::MAX.
    let snap = sink_with(&[15u64 << 60, u64::MAX - 3, u64::MAX]).snapshot();
    let h = &snap.histograms["route_cost_milli"];
    assert_eq!(h.quantile(1.0), Some(u64::MAX));
    assert_eq!(h.quantile(0.0), Some(u64::MAX)); // clamped to observed max
    assert_eq!(h.min, 15u64 << 60);
}
