//! Subcommand implementations.

use crate::args::Args;
use crate::netio::{emit, load_network, render_network};
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use wdm_core::conversion::ConversionTable;
use wdm_core::load::load_snapshot;
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_graph::traverse::{edge_connectivity, is_strongly_connected};
use wdm_graph::NodeId;
use wdm_sim::batch::{full_mesh_demands, BatchOrder};
use wdm_sim::metrics::mean_std;
use wdm_sim::parallel::{replication_seeds, run_replications, run_replications_telemetry};
use wdm_sim::policy::{Policy, ProvisionedRoute};
use wdm_sim::prelude::NoopRecorder;
use wdm_sim::sim::{run_batch_recorded, run_sim_journaled, BatchConfig, SimConfig};
use wdm_sim::traffic::TrafficModel;

/// On-disk format of `wdm simulate --journal` / `wdm replay`: the network
/// and journal are self-contained, so replay needs no other inputs.
#[derive(serde::Serialize, serde::Deserialize)]
struct JournalFile {
    /// The network the journal was recorded on.
    network: WdmNetwork,
    /// The base seed the simulation ran with (provenance only).
    seed: u64,
    /// The provisioning policy's name (provenance only).
    policy: String,
    /// Checkpoint + ordered event log.
    journal: wdm_core::journal::StateJournal,
    /// [`ResidualState::semantic_hash`] of the live run's final state.
    final_hash: u64,
}

/// Parses a `--policy` value.
pub fn parse_policy(spec: &str) -> Result<Policy, String> {
    let a = std::f64::consts::E;
    Ok(match spec {
        "cost-only" | "cost" => Policy::CostOnly,
        "load-only" | "load" => Policy::LoadOnly { a },
        "joint" => Policy::Joint { a },
        "joint-as-printed" => Policy::JointAsPrinted { a },
        "two-step" => Policy::TwoStep,
        "unrefined" => Policy::Unrefined,
        "ksp" => Policy::Ksp { k: 16 },
        "node-disjoint" => Policy::NodeDisjoint,
        "primary-only" => Policy::PrimaryOnly,
        other => return Err(format!("unknown policy '{other}'")),
    })
}

/// Parses a `--conversion` value (`auto` picks cost = cheapest link).
fn parse_conversion(spec: &str, min_link_cost: f64) -> Result<ConversionTable, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    Ok(match parts.as_slice() {
        ["none"] => ConversionTable::None,
        ["full", "auto"] => ConversionTable::Full {
            cost: min_link_cost,
        },
        ["full", c] => ConversionTable::Full {
            cost: c.parse().map_err(|e| format!("bad cost: {e}"))?,
        },
        ["range", k, c] => ConversionTable::Range {
            range: k.parse().map_err(|e| format!("bad range: {e}"))?,
            cost: c.parse().map_err(|e| format!("bad cost: {e}"))?,
        },
        _ => return Err(format!("unknown conversion spec '{spec}'")),
    })
}

/// `wdm topology <preset>`.
pub fn topology(args: &Args) -> Result<(), String> {
    let preset = args
        .positional(0)
        .ok_or("missing topology preset (nsfnet, arpanet, ring:N, grid:WxH, waxman:N)")?;
    let w: usize = args.get_or("wavelengths", 8)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);

    let (topo, scale) = match preset {
        "nsfnet" => (wdm_graph::topology::nsfnet(), 0.01),
        "arpanet" => (wdm_graph::topology::arpanet_like(), 0.01),
        p if p.starts_with("ring:") => {
            let n: usize = p[5..].parse().map_err(|e| format!("bad ring size: {e}"))?;
            (wdm_graph::topology::ring(n, 100.0), 0.01)
        }
        p if p.starts_with("grid:") => {
            let (gw, gh) = p[5..]
                .split_once('x')
                .ok_or("grid wants WxH, e.g. grid:4x4")?;
            let gw: usize = gw.parse().map_err(|e| format!("bad grid width: {e}"))?;
            let gh: usize = gh.parse().map_err(|e| format!("bad grid height: {e}"))?;
            (wdm_graph::topology::grid(gw, gh, false, 100.0), 0.01)
        }
        p if p.starts_with("waxman:") => {
            let n: usize = p[7..].parse().map_err(|e| format!("bad node count: {e}"))?;
            (
                wdm_graph::topology::waxman(n, 0.9, 0.25, 1000.0, &mut rng),
                0.01,
            )
        }
        other => return Err(format!("unknown preset '{other}'")),
    };

    // Cheapest link (after scaling) for conv=full:auto.
    let min_cost = topo
        .edge_ids()
        .map(|e| topo.weight(e) * scale)
        .fold(f64::INFINITY, f64::min);
    let conv = parse_conversion(args.get("conversion").unwrap_or("full:auto"), min_cost)?;
    let net = NetworkBuilder::from_topology(&topo, w, conv, scale).build();

    let format = args.get("format").unwrap_or("wdm");
    let rendered = render_network(&net, format)?;
    emit(args.get("out"), &rendered)
}

/// `wdm info`.
pub fn info(args: &Args) -> Result<(), String> {
    let net = load_network(args.require("net")?)?;
    let g = net.graph();
    let n = net.node_count();
    println!("nodes            {n}");
    println!("directed links   {}", net.link_count());
    println!("wavelengths      {}", net.num_wavelengths());
    println!(
        "total channels   {}",
        (0..net.link_count())
            .map(|i| net.capacity(wdm_graph::EdgeId::from(i)))
            .sum::<usize>()
    );
    println!("max degree       {}", g.max_degree());
    println!("strongly conn.   {}", is_strongly_connected(g));
    if let Some(ap) = wdm_graph::johnson::johnson_all_pairs(g, |e| net.min_link_cost(e)) {
        if let (Some(d), Some(m)) = (ap.diameter(), ap.mean_distance()) {
            println!("cost diameter    {d:.1}");
            println!("mean pair cost   {m:.1}");
        }
    }
    println!(
        "ratio premise    {}",
        if net.satisfies_ratio_premise() {
            "satisfied (Theorem 2 applies)"
        } else {
            "violated"
        }
    );
    // Robustness: min edge connectivity over a sample of pairs (all pairs
    // for small nets).
    let mut min_conn = usize::MAX;
    let mut worst = (0u32, 0u32);
    for s in 0..n as u32 {
        for t in 0..n as u32 {
            if s != t {
                let k = edge_connectivity(g, NodeId(s), NodeId(t));
                if k < min_conn {
                    min_conn = k;
                    worst = (s, t);
                }
            }
        }
    }
    println!(
        "min edge-conn.   {min_conn} (pair {} -> {}) {}",
        worst.0,
        worst.1,
        if min_conn >= 2 {
            "- robust routing feasible everywhere"
        } else {
            "- some pairs cannot be protected"
        }
    );
    Ok(())
}

/// `wdm route`.
pub fn route(args: &Args) -> Result<(), String> {
    let net = load_network(args.require("net")?)?;
    let s: u32 = args.require_parsed("from")?;
    let t: u32 = args.require_parsed("to")?;
    let n = net.node_count() as u32;
    if s >= n || t >= n {
        return Err(format!(
            "node ids must be in 0..{n} (got --from {s} --to {t})"
        ));
    }
    let policy = parse_policy(args.get("policy").unwrap_or("cost-only"))?;
    let state = ResidualState::fresh(&net);
    let routed = policy
        .route(&net, &state, NodeId(s), NodeId(t))
        .map_err(|e| format!("routing failed: {e}"))?;

    if args.flag("json") {
        let json = serde_json::to_string_pretty(&routed).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }
    print_route(&net, &routed);
    Ok(())
}

fn print_route(net: &WdmNetwork, routed: &ProvisionedRoute) {
    let print_leg = |name: &str, slp: &wdm_core::semilightpath::Semilightpath| {
        println!(
            "{name}: cost {:.2}, {} hops, {} conversions",
            slp.cost,
            slp.len(),
            slp.conversion_count()
        );
        for hop in &slp.hops {
            let (u, v) = net.endpoints(hop.edge);
            println!("  {u} -> {v} on {}", hop.wavelength);
        }
    };
    match routed {
        ProvisionedRoute::Protected(r) => {
            print_leg("primary", &r.primary);
            print_leg("backup ", &r.backup);
            println!("total cost {:.2}", r.total_cost());
        }
        ProvisionedRoute::Unprotected(p) => {
            print_leg("route  ", p);
            println!("(unprotected)");
        }
    }
}

/// `wdm simulate`.
pub fn simulate(args: &Args) -> Result<(), String> {
    let net = load_network(args.require("net")?)?;
    let erlangs: f64 = args.require_parsed("erlangs")?;
    let duration: f64 = args.require_parsed("duration")?;
    let holding: f64 = args.get_or("holding", 10.0)?;
    // Negated comparisons are deliberate: NaN must be rejected too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(erlangs > 0.0) || !(duration > 0.0) || !(holding > 0.0) {
        return Err("erlangs, duration and holding must all be positive".into());
    }
    let policy = parse_policy(args.get("policy").unwrap_or("cost-only"))?;
    let seed: u64 = args.get_or("seed", 1)?;
    let reps: usize = args.get_or("reps", 1)?;
    let failure_rate: f64 = args.get_or("failure-rate", 0.0)?;
    let repair: f64 = args.get_or("repair", 20.0)?;
    let reconfig: f64 = args.get_or("reconfig", 0.0)?;

    let cfg = SimConfig {
        policy,
        traffic: TrafficModel::new(erlangs / holding, holding),
        duration,
        failure_rate,
        mean_repair: repair,
        reconfig_threshold: (reconfig > 0.0).then_some(reconfig),
        seed,
        switchover_time: 0.001,
        setup_time_per_hop: 0.05,
    };
    // Seed i is a pure function of (base seed, i) — identical to the serial
    // and experiment-binary derivations, so replication streams line up
    // across tools.
    let seeds = replication_seeds(seed, reps);
    let telemetry_mode = match args.get("telemetry") {
        None => None,
        Some("json") => Some("json"),
        Some("summary") => Some("summary"),
        Some(other) => return Err(format!("--telemetry wants json|summary, got '{other}'")),
    };
    let journal_path = args.get("journal");
    if journal_path.is_some() {
        if reps != 1 {
            return Err("--journal wants --reps 1 (one journal describes one run)".into());
        }
        if telemetry_mode.is_some() {
            return Err("--journal cannot be combined with --telemetry".into());
        }
    }
    let (runs, telemetry) = if let Some(jpath) = journal_path {
        // The journaled run uses the same derived seed as replication 0, so
        // the metrics printed below are identical to the plain invocation.
        let mut journal = wdm_core::journal::StateJournal::new(ResidualState::fresh(&net));
        let (metrics, final_state) = run_sim_journaled(
            &net,
            SimConfig {
                seed: seeds[0],
                ..cfg
            },
            &mut journal,
        );
        let doc = JournalFile {
            network: net.clone(),
            seed,
            policy: policy.name().to_string(),
            journal,
            final_hash: final_state.semantic_hash(),
        };
        let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(jpath, json).map_err(|e| format!("writing {jpath}: {e}"))?;
        (vec![metrics], None)
    } else if telemetry_mode.is_some() {
        let (runs, snap) = run_replications_telemetry(&net, cfg, &seeds);
        (runs, Some(snap))
    } else {
        (run_replications(&net, cfg, &seeds), None)
    };

    if args.flag("json") {
        let json = match &telemetry {
            // One JSON document carrying both: keeps stdout parseable.
            Some(snap) => {
                let combined = serde_json::Value::Object(vec![
                    ("metrics".to_string(), serde_json::to_value(&runs)),
                    ("telemetry".to_string(), serde_json::to_value(snap)),
                ]);
                serde_json::to_string_pretty(&combined).map_err(|e| e.to_string())?
            }
            None => serde_json::to_string_pretty(&runs).map_err(|e| e.to_string())?,
        };
        println!("{json}");
        return Ok(());
    }
    let stat = |f: &dyn Fn(&wdm_sim::metrics::Metrics) -> f64| {
        mean_std(&runs.iter().map(f).collect::<Vec<_>>())
    };
    let (bp, bp_sd) = stat(&|m| m.blocking_probability() * 100.0);
    let (cost, _) = stat(&|m| m.mean_route_cost());
    let (load, _) = stat(&|m| m.mean_network_load());
    let (peak, _) = stat(&|m| m.peak_network_load);
    println!("policy            {}", policy.name());
    println!("offered load      {erlangs} Erlang over {duration} time units x {reps} reps");
    println!("blocking          {bp:.3}% ± {bp_sd:.3}");
    println!("mean route cost   {cost:.2}");
    println!("mean network load {load:.3}");
    println!("peak network load {peak:.3}");
    if failure_rate > 0.0 {
        let cuts: u64 = runs.iter().map(|m| m.failures_injected).sum();
        let fast: u64 = runs.iter().map(|m| m.fast_switchovers).sum();
        let passive: u64 = runs.iter().map(|m| m.passive_recoveries).sum();
        let dropped: u64 = runs.iter().map(|m| m.recovery_failures).sum();
        println!(
            "fibre cuts        {cuts} (instant {fast}, recomputed {passive}, dropped {dropped})"
        );
    }
    if cfg.reconfig_threshold.is_some() {
        let rc: u64 = runs.iter().map(|m| m.reconfig_events).sum();
        let moved: u64 = runs.iter().map(|m| m.reconfig_moved).sum();
        println!("reconfigurations  {rc} (moved {moved} connections)");
    }
    if let (Some(mode), Some(snap)) = (telemetry_mode, &telemetry) {
        println!("--- telemetry ({} replications merged) ---", runs.len());
        if mode == "summary" {
            print!("{}", snap.summary());
        } else {
            let json = serde_json::to_string_pretty(snap).map_err(|e| e.to_string())?;
            println!("{json}");
        }
    }
    Ok(())
}

/// `wdm replay` — reconstruct a recorded simulation's final state from its
/// journal and (with `--verify`) check it against the recorded hash.
pub fn replay(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("missing journal file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc: JournalFile =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;

    let replayed = doc
        .journal
        .replay(&doc.network)
        .map_err(|e| format!("replay diverged: {e}"))?;
    let hash = replayed.semantic_hash();
    let verified = hash == doc.final_hash;

    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for ev in doc.journal.events() {
        *counts.entry(ev.kind().to_string()).or_default() += 1;
    }
    let load = load_snapshot(&doc.network, &replayed);

    if args.flag("json") {
        let combined = serde_json::Value::Object(vec![
            ("policy".to_string(), serde_json::to_value(&doc.policy)),
            ("seed".to_string(), serde_json::to_value(&doc.seed)),
            ("events".to_string(), serde_json::to_value(&counts)),
            ("final_load".to_string(), serde_json::to_value(&load)),
            (
                "recorded_hash".to_string(),
                serde_json::to_value(&doc.final_hash),
            ),
            ("replayed_hash".to_string(), serde_json::to_value(&hash)),
            ("verified".to_string(), serde_json::to_value(&verified)),
        ]);
        let json = serde_json::to_string_pretty(&combined).map_err(|e| e.to_string())?;
        println!("{json}");
    } else {
        println!("policy       {}", doc.policy);
        println!("base seed    {}", doc.seed);
        println!("events       {}", doc.journal.len());
        for (kind, n) in &counts {
            println!("  {kind:<12} {n}");
        }
        println!(
            "final load   max {:.3}, p90 {:.3}, mean {:.3}",
            load.max, load.p90, load.mean
        );
        println!(
            "state hash   {:#018x} ({})",
            hash,
            if verified {
                "matches the recorded hash"
            } else {
                "MISMATCH against the recorded hash"
            }
        );
    }
    if args.flag("verify") && !verified {
        return Err(format!(
            "final-state hash mismatch: recorded {:#018x}, replayed {:#018x}",
            doc.final_hash, hash
        ));
    }
    Ok(())
}

/// `wdm batch`.
pub fn batch(args: &Args) -> Result<(), String> {
    let net = load_network(args.require("net")?)?;
    let mesh: usize = args.get_or("mesh", 1)?;
    let policy = parse_policy(args.get("policy").unwrap_or("cost-only"))?;
    let order = match args.get("order").unwrap_or("as-given") {
        "as-given" => BatchOrder::AsGiven,
        "shortest-first" => BatchOrder::ShortestFirst,
        "longest-first" => BatchOrder::LongestFirst,
        other => return Err(format!("unknown order '{other}'")),
    };
    let window: usize = args.get_or("parallel-window", 1)?;
    if window == 0 {
        return Err("--parallel-window wants a positive window size".into());
    }
    let state = ResidualState::fresh(&net);
    let demands = full_mesh_demands(net.node_count(), mesh);
    let cfg = BatchConfig {
        policy,
        order,
        parallel_window: window,
    };
    let (out, stats) = run_batch_recorded(&net, &state, &demands, cfg, NoopRecorder);
    let snap = load_snapshot(&net, &out.state);
    println!(
        "accepted   {}/{} ({:.1}%)",
        out.provisioned.len(),
        demands.len(),
        out.acceptance_ratio(demands.len()) * 100.0
    );
    println!("total cost {:.1}", out.total_cost);
    println!(
        "final load max {:.3}, p90 {:.3}, mean {:.3}",
        snap.max, snap.p90, snap.mean
    );
    if window > 1 {
        println!(
            "speculation rounds {}, commits {}, aborts {} ({:.1}% abort rate)",
            stats.rounds,
            stats.commits,
            stats.aborts,
            stats.abort_rate() * 100.0
        );
    }
    Ok(())
}

/// `wdm telemetry <verb>`.
pub fn telemetry(args: &Args) -> Result<(), String> {
    match args.positional(0) {
        Some("diff") => telemetry_diff(args),
        Some(other) => Err(format!(
            "unknown telemetry verb '{other}' (expected 'diff')"
        )),
        None => Err(
            "usage: wdm telemetry diff <baseline.json> <candidate.json> \
                     [--metrics SUBSTR] [--fail-drop PCT]"
                .into(),
        ),
    }
}

/// `wdm telemetry diff` — per-metric deltas between two JSON files.
///
/// Works on any JSON whose leaves are numbers (telemetry snapshots, the
/// BENCH_*.json experiment outputs, combined simulate dumps): the files are
/// flattened to dotted paths and compared metric-by-metric. With
/// `--fail-drop PCT` the command exits non-zero when any selected metric
/// falls more than PCT percent below the baseline — the CI perf gate.
fn telemetry_diff(args: &Args) -> Result<(), String> {
    let a_path = args.positional(1).ok_or("missing baseline file")?;
    let b_path = args.positional(2).ok_or("missing candidate file")?;
    let filter = args.get("metrics");
    let fail_drop: f64 = args.get_or("fail-drop", 0.0)?;
    if fail_drop < 0.0 {
        return Err("--fail-drop wants a non-negative percentage".into());
    }
    let a = flatten_json_file(a_path)?;
    let b = flatten_json_file(b_path)?;

    let keys: BTreeSet<&String> = a
        .keys()
        .chain(b.keys())
        .filter(|k| filter.is_none_or(|f| k.contains(f)))
        .collect();
    if keys.is_empty() {
        return Err(match filter {
            Some(f) => format!("no numeric metrics matching '{f}' in either file"),
            None => "no numeric metrics in either file".into(),
        });
    }

    println!(
        "{:<44} {:>14} {:>14} {:>9}",
        "metric", "baseline", "candidate", "delta"
    );
    let mut regressions = Vec::new();
    for key in keys {
        match (a.get(key), b.get(key)) {
            (Some(&va), Some(&vb)) => {
                let delta = if va != 0.0 {
                    format!("{:+.1}%", (vb - va) / va * 100.0)
                } else if vb == 0.0 {
                    "0.0%".to_string()
                } else {
                    "new".to_string()
                };
                println!("{key:<44} {va:>14.3} {vb:>14.3} {delta:>9}");
                if fail_drop > 0.0 && va > 0.0 && (vb - va) / va * 100.0 < -fail_drop {
                    regressions.push(format!(
                        "{key}: {va:.3} -> {vb:.3} ({:+.1}%, limit -{fail_drop}%)",
                        (vb - va) / va * 100.0
                    ));
                }
            }
            (Some(&va), None) => println!("{key:<44} {va:>14.3} {:>14} {:>9}", "-", "gone"),
            (None, Some(&vb)) => println!("{key:<44} {:>14} {vb:>14.3} {:>9}", "-", "new"),
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} metric(s) regressed beyond {fail_drop}%:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ))
    }
}

/// Loads a JSON file and flattens every numeric leaf to a dotted path.
fn flatten_json_file(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut out = BTreeMap::new();
    flatten_value("", &value, &mut out);
    Ok(out)
}

fn flatten_value(prefix: &str, value: &serde_json::Value, out: &mut BTreeMap<String, f64>) {
    let join = |key: &str| {
        if prefix.is_empty() {
            key.to_string()
        } else {
            format!("{prefix}.{key}")
        }
    };
    match value {
        serde_json::Value::Number(n) => {
            out.insert(prefix.to_string(), n.as_f64());
        }
        serde_json::Value::Object(fields) => {
            for (k, v) in fields {
                flatten_value(&join(k), v, out);
            }
        }
        serde_json::Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten_value(&join(&i.to_string()), v, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parser_accepts_all_names() {
        for p in [
            "cost-only",
            "load-only",
            "joint",
            "joint-as-printed",
            "two-step",
            "unrefined",
            "ksp",
            "node-disjoint",
            "primary-only",
        ] {
            assert!(parse_policy(p).is_ok(), "{p}");
        }
        assert!(parse_policy("nonsense").is_err());
    }

    #[test]
    fn conversion_parser() {
        assert_eq!(
            parse_conversion("none", 1.0).unwrap(),
            ConversionTable::None
        );
        assert_eq!(
            parse_conversion("full:auto", 2.5).unwrap(),
            ConversionTable::Full { cost: 2.5 }
        );
        assert_eq!(
            parse_conversion("full:1.25", 9.0).unwrap(),
            ConversionTable::Full { cost: 1.25 }
        );
        assert_eq!(
            parse_conversion("range:2:0.5", 9.0).unwrap(),
            ConversionTable::Range {
                range: 2,
                cost: 0.5
            }
        );
        assert!(parse_conversion("bogus", 1.0).is_err());
    }

    #[test]
    fn flatten_value_walks_nested_json() {
        let v: serde_json::Value = serde_json::from_str(
            r#"{"a": 1, "b": {"c": 2.5, "d": [10, 20]}, "e": "text", "f": null}"#,
        )
        .unwrap();
        let mut out = BTreeMap::new();
        flatten_value("", &v, &mut out);
        assert_eq!(out["a"], 1.0);
        assert_eq!(out["b.c"], 2.5);
        assert_eq!(out["b.d.0"], 10.0);
        assert_eq!(out["b.d.1"], 20.0);
        assert_eq!(out.len(), 4, "non-numeric leaves are skipped: {out:?}");
    }

    #[test]
    fn telemetry_diff_gates_on_drop() {
        let dir = std::env::temp_dir().join("wdm_cli_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, r#"{"speedup": 10.0, "other": 1.0}"#).unwrap();
        std::fs::write(&b, r#"{"speedup": 8.0, "other": 1.0}"#).unwrap();
        let argv = |extra: &[&str]| {
            let mut v = vec![
                "diff".to_string(),
                a.to_string_lossy().into_owned(),
                b.to_string_lossy().into_owned(),
            ];
            v.extend(extra.iter().map(|s| s.to_string()));
            Args::parse(&v).unwrap()
        };
        // 20% drop: passes a 25% gate, fails a 15% gate.
        assert!(telemetry(&argv(&["--fail-drop", "25"])).is_ok());
        let err = telemetry(&argv(&["--fail-drop", "15"])).unwrap_err();
        assert!(err.contains("speedup"), "{err}");
        // Filtering to an unaffected metric passes.
        assert!(telemetry(&argv(&["--metrics", "other", "--fail-drop", "15"])).is_ok());
        // No gate: informational diff always succeeds.
        assert!(telemetry(&argv(&[])).is_ok());
    }
}
