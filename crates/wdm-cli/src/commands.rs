//! Subcommand implementations.

use crate::args::Args;
use crate::netio::{emit, load_network, render_network};
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use wdm_core::conversion::ConversionTable;
use wdm_core::load::load_snapshot;
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_graph::traverse::{edge_connectivity, is_strongly_connected};
use wdm_graph::NodeId;
use wdm_sim::batch::{full_mesh_demands, BatchOrder};
use wdm_sim::metrics::mean_std;
use wdm_sim::parallel::{replication_seeds, run_replications, run_replications_telemetry};
use wdm_sim::policy::{Policy, ProvisionedRoute};
use wdm_sim::prelude::NoopRecorder;
use wdm_sim::schedule::{ScheduleMode, DEFAULT_SHARDS};
use wdm_sim::sim::{run_batch_recorded, BatchConfig, SimConfig, Simulator};
use wdm_sim::traffic::TrafficModel;
use wdm_telemetry::{
    FlightDump, FlightRecorder, Phase, SpanBuffer, TelemetrySink, DEFAULT_ANOMALY_THRESHOLD,
    DEFAULT_ANOMALY_WINDOW, DEFAULT_FLIGHT_CAPACITY,
};

/// On-disk format of `wdm simulate --journal` / `wdm replay`: the network
/// and journal are self-contained, so replay needs no other inputs.
#[derive(serde::Serialize, serde::Deserialize)]
struct JournalFile {
    /// The network the journal was recorded on.
    network: WdmNetwork,
    /// The base seed the simulation ran with (provenance only).
    seed: u64,
    /// The provisioning policy's name (provenance only).
    policy: String,
    /// The full simulation configuration (base seed, not the derived
    /// replication seed), so `wdm replay --telemetry` can re-run the
    /// recorded simulation.
    config: SimConfig,
    /// Checkpoint + ordered event log.
    journal: wdm_core::journal::StateJournal,
    /// [`ResidualState::semantic_hash`] of the live run's final state.
    final_hash: u64,
}

/// On-disk format of `wdm simulate --trace` / `wdm trace analyze`: the
/// flight-recorder dump (per-request phase latencies, outcomes, journal
/// correlation) plus enough provenance to label the analysis.
#[derive(serde::Serialize, serde::Deserialize)]
struct TraceFile {
    /// The provisioning policy's name.
    policy: String,
    /// The base seed the simulation ran with.
    seed: u64,
    /// Phase names in `Phase as usize` index order (the key for every
    /// record's `phase_ns` vector).
    phases: Vec<String>,
    /// Requests offered over the whole run (the ring may hold fewer).
    offered: u64,
    /// The flight-recorder dump.
    flight: FlightDump,
}

/// Parses a `--policy` value.
pub fn parse_policy(spec: &str) -> Result<Policy, String> {
    let a = std::f64::consts::E;
    Ok(match spec {
        "cost-only" | "cost" => Policy::CostOnly,
        "load-only" | "load" => Policy::LoadOnly { a },
        "joint" => Policy::Joint { a },
        "joint-as-printed" => Policy::JointAsPrinted { a },
        "two-step" => Policy::TwoStep,
        "unrefined" => Policy::Unrefined,
        "ksp" => Policy::Ksp { k: 16 },
        "node-disjoint" => Policy::NodeDisjoint,
        "primary-only" => Policy::PrimaryOnly,
        other => return Err(format!("unknown policy '{other}'")),
    })
}

/// Parses a `--conversion` value (`auto` picks cost = cheapest link).
fn parse_conversion(spec: &str, min_link_cost: f64) -> Result<ConversionTable, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    Ok(match parts.as_slice() {
        ["none"] => ConversionTable::None,
        ["full", "auto"] => ConversionTable::Full {
            cost: min_link_cost,
        },
        ["full", c] => ConversionTable::Full {
            cost: c.parse().map_err(|e| format!("bad cost: {e}"))?,
        },
        ["range", k, c] => ConversionTable::Range {
            range: k.parse().map_err(|e| format!("bad range: {e}"))?,
            cost: c.parse().map_err(|e| format!("bad cost: {e}"))?,
        },
        _ => return Err(format!("unknown conversion spec '{spec}'")),
    })
}

/// `wdm topology <preset>`.
pub fn topology(args: &Args) -> Result<(), String> {
    let preset = args
        .positional(0)
        .ok_or("missing topology preset (nsfnet, arpanet, ring:N, grid:WxH, waxman:N)")?;
    let w: usize = args.get_or("wavelengths", 8)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);

    let (topo, scale) = match preset {
        "nsfnet" => (wdm_graph::topology::nsfnet(), 0.01),
        "arpanet" => (wdm_graph::topology::arpanet_like(), 0.01),
        p if p.starts_with("ring:") => {
            let n: usize = p[5..].parse().map_err(|e| format!("bad ring size: {e}"))?;
            (wdm_graph::topology::ring(n, 100.0), 0.01)
        }
        p if p.starts_with("grid:") => {
            let (gw, gh) = p[5..]
                .split_once('x')
                .ok_or("grid wants WxH, e.g. grid:4x4")?;
            let gw: usize = gw.parse().map_err(|e| format!("bad grid width: {e}"))?;
            let gh: usize = gh.parse().map_err(|e| format!("bad grid height: {e}"))?;
            (wdm_graph::topology::grid(gw, gh, false, 100.0), 0.01)
        }
        p if p.starts_with("waxman:") => {
            let n: usize = p[7..].parse().map_err(|e| format!("bad node count: {e}"))?;
            (
                wdm_graph::topology::waxman(n, 0.9, 0.25, 1000.0, &mut rng),
                0.01,
            )
        }
        other => return Err(format!("unknown preset '{other}'")),
    };

    // Cheapest link (after scaling) for conv=full:auto.
    let min_cost = topo
        .edge_ids()
        .map(|e| topo.weight(e) * scale)
        .fold(f64::INFINITY, f64::min);
    let conv = parse_conversion(args.get("conversion").unwrap_or("full:auto"), min_cost)?;
    let net = NetworkBuilder::from_topology(&topo, w, conv, scale).build();

    let format = args.get("format").unwrap_or("wdm");
    let rendered = render_network(&net, format)?;
    emit(args.get("out"), &rendered)
}

/// `wdm info`.
pub fn info(args: &Args) -> Result<(), String> {
    let net = load_network(args.require("net")?)?;
    let g = net.graph();
    let n = net.node_count();
    println!("nodes            {n}");
    println!("directed links   {}", net.link_count());
    println!("wavelengths      {}", net.num_wavelengths());
    println!(
        "total channels   {}",
        (0..net.link_count())
            .map(|i| net.capacity(wdm_graph::EdgeId::from(i)))
            .sum::<usize>()
    );
    println!("max degree       {}", g.max_degree());
    println!("strongly conn.   {}", is_strongly_connected(g));
    if let Some(ap) = wdm_graph::johnson::johnson_all_pairs(g, |e| net.min_link_cost(e)) {
        if let (Some(d), Some(m)) = (ap.diameter(), ap.mean_distance()) {
            println!("cost diameter    {d:.1}");
            println!("mean pair cost   {m:.1}");
        }
    }
    println!(
        "ratio premise    {}",
        if net.satisfies_ratio_premise() {
            "satisfied (Theorem 2 applies)"
        } else {
            "violated"
        }
    );
    // Robustness: min edge connectivity over a sample of pairs (all pairs
    // for small nets).
    let mut min_conn = usize::MAX;
    let mut worst = (0u32, 0u32);
    for s in 0..n as u32 {
        for t in 0..n as u32 {
            if s != t {
                let k = edge_connectivity(g, NodeId(s), NodeId(t));
                if k < min_conn {
                    min_conn = k;
                    worst = (s, t);
                }
            }
        }
    }
    println!(
        "min edge-conn.   {min_conn} (pair {} -> {}) {}",
        worst.0,
        worst.1,
        if min_conn >= 2 {
            "- robust routing feasible everywhere"
        } else {
            "- some pairs cannot be protected"
        }
    );
    Ok(())
}

/// `wdm route`.
pub fn route(args: &Args) -> Result<(), String> {
    let net = load_network(args.require("net")?)?;
    let s: u32 = args.require_parsed("from")?;
    let t: u32 = args.require_parsed("to")?;
    let n = net.node_count() as u32;
    if s >= n || t >= n {
        return Err(format!(
            "node ids must be in 0..{n} (got --from {s} --to {t})"
        ));
    }
    let policy = parse_policy(args.get("policy").unwrap_or("cost-only"))?;
    let state = ResidualState::fresh(&net);
    let routed = policy
        .route(&net, &state, NodeId(s), NodeId(t))
        .map_err(|e| format!("routing failed: {e}"))?;

    if args.flag("json") {
        let json = serde_json::to_string_pretty(&routed).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }
    print_route(&net, &routed);
    Ok(())
}

fn print_route(net: &WdmNetwork, routed: &ProvisionedRoute) {
    let print_leg = |name: &str, slp: &wdm_core::semilightpath::Semilightpath| {
        println!(
            "{name}: cost {:.2}, {} hops, {} conversions",
            slp.cost,
            slp.len(),
            slp.conversion_count()
        );
        for hop in &slp.hops {
            let (u, v) = net.endpoints(hop.edge);
            println!("  {u} -> {v} on {}", hop.wavelength);
        }
    };
    match routed {
        ProvisionedRoute::Protected(r) => {
            print_leg("primary", &r.primary);
            print_leg("backup ", &r.backup);
            println!("total cost {:.2}", r.total_cost());
        }
        ProvisionedRoute::Unprotected(p) => {
            print_leg("route  ", p);
            println!("(unprotected)");
        }
    }
}

/// `wdm simulate`.
pub fn simulate(args: &Args) -> Result<(), String> {
    let net = load_network(args.require("net")?)?;
    let erlangs: f64 = args.require_parsed("erlangs")?;
    let duration: f64 = args.require_parsed("duration")?;
    let holding: f64 = args.get_or("holding", 10.0)?;
    // Negated comparisons are deliberate: NaN must be rejected too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(erlangs > 0.0) || !(duration > 0.0) || !(holding > 0.0) {
        return Err("erlangs, duration and holding must all be positive".into());
    }
    let policy = parse_policy(args.get("policy").unwrap_or("cost-only"))?;
    let seed: u64 = args.get_or("seed", 1)?;
    let reps: usize = args.get_or("reps", 1)?;
    let failure_rate: f64 = args.get_or("failure-rate", 0.0)?;
    let repair: f64 = args.get_or("repair", 20.0)?;
    let reconfig: f64 = args.get_or("reconfig", 0.0)?;

    let cfg = SimConfig {
        policy,
        traffic: TrafficModel::new(erlangs / holding, holding),
        duration,
        failure_rate,
        mean_repair: repair,
        reconfig_threshold: (reconfig > 0.0).then_some(reconfig),
        seed,
        switchover_time: 0.001,
        setup_time_per_hop: 0.05,
    };
    // Seed i is a pure function of (base seed, i) — identical to the serial
    // and experiment-binary derivations, so replication streams line up
    // across tools.
    let seeds = replication_seeds(seed, reps);
    let telemetry_mode = match args.get("telemetry") {
        None => None,
        Some("json") => Some("json"),
        Some("summary") => Some("summary"),
        Some(other) => return Err(format!("--telemetry wants json|summary, got '{other}'")),
    };
    let journal_path = args.get("journal");
    let trace_path = args.get("trace");
    if journal_path.is_some() || trace_path.is_some() {
        let opt = if journal_path.is_some() {
            "--journal"
        } else {
            "--trace"
        };
        if reps != 1 {
            return Err(format!("{opt} wants --reps 1 (one file describes one run)"));
        }
        if telemetry_mode.is_some() {
            return Err(format!("{opt} cannot be combined with --telemetry"));
        }
    }
    let (runs, telemetry) = if journal_path.is_some() || trace_path.is_some() {
        // The recorded run uses the same derived seed as replication 0, so
        // the metrics printed below are identical to the plain invocation.
        let run_cfg = SimConfig {
            seed: seeds[0],
            ..cfg
        };
        // Ctrl-C on a recorded run is a graceful interrupt, not a kill:
        // the simulator stops at the next event boundary and the journal
        // written below still replays with `wdm replay --verify`.
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        install_sigint_bridge(std::sync::Arc::clone(&stop));
        let mut journal = wdm_core::journal::StateJournal::new(ResidualState::fresh(&net));
        let (metrics, final_state, flight) = if trace_path.is_some() {
            let flight_cap: usize = args.get_or("flight-cap", DEFAULT_FLIGHT_CAPACITY)?;
            let tracer = SpanBuffer::new();
            let flight = FlightRecorder::with_config(
                flight_cap,
                DEFAULT_ANOMALY_WINDOW,
                DEFAULT_ANOMALY_THRESHOLD,
            );
            // The journal is driven even without --journal so every flight
            // record's journal_seq is meaningful correlation, not zero.
            let mut sim = Simulator::with_observability(
                &net,
                run_cfg,
                NoopRecorder,
                &mut journal,
                &tracer,
                Some(&flight),
            );
            sim.set_stop_flag(std::sync::Arc::clone(&stop));
            let (metrics, final_state) = sim.run_into();
            (metrics, final_state, Some(flight))
        } else {
            let mut sim =
                Simulator::with_recorder_and_journal(&net, run_cfg, NoopRecorder, &mut journal);
            sim.set_stop_flag(std::sync::Arc::clone(&stop));
            let (metrics, final_state) = sim.run_into();
            (metrics, final_state, None)
        };
        if stop.load(std::sync::atomic::Ordering::SeqCst) {
            eprintln!(
                "interrupted: stopped at an event boundary after {} events; \
                 the recorded journal still replays with --verify",
                journal.len()
            );
        }
        if let Some(jpath) = journal_path {
            let doc = JournalFile {
                network: net.clone(),
                seed,
                policy: policy.name().to_string(),
                config: cfg,
                journal,
                final_hash: final_state.semantic_hash(),
            };
            let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
            std::fs::write(jpath, json).map_err(|e| format!("writing {jpath}: {e}"))?;
        }
        if let (Some(tpath), Some(flight)) = (trace_path, &flight) {
            let doc = TraceFile {
                policy: policy.name().to_string(),
                seed,
                phases: Phase::ALL.iter().map(|p| p.name().to_string()).collect(),
                offered: metrics.offered,
                flight: flight.dump(),
            };
            let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
            std::fs::write(tpath, json).map_err(|e| format!("writing {tpath}: {e}"))?;
        }
        (vec![metrics], None)
    } else if telemetry_mode.is_some() {
        let (runs, snap) = run_replications_telemetry(&net, cfg, &seeds);
        (runs, Some(snap))
    } else {
        (run_replications(&net, cfg, &seeds), None)
    };

    if args.flag("json") {
        let json = match &telemetry {
            // One JSON document carrying both: keeps stdout parseable.
            Some(snap) => {
                let combined = serde_json::Value::Object(vec![
                    ("metrics".to_string(), serde_json::to_value(&runs)),
                    ("telemetry".to_string(), serde_json::to_value(snap)),
                ]);
                serde_json::to_string_pretty(&combined).map_err(|e| e.to_string())?
            }
            None => serde_json::to_string_pretty(&runs).map_err(|e| e.to_string())?,
        };
        println!("{json}");
        return Ok(());
    }
    let stat = |f: &dyn Fn(&wdm_sim::metrics::Metrics) -> f64| {
        mean_std(&runs.iter().map(f).collect::<Vec<_>>())
    };
    let (bp, bp_sd) = stat(&|m| m.blocking_probability() * 100.0);
    let (cost, _) = stat(&|m| m.mean_route_cost());
    let (load, _) = stat(&|m| m.mean_network_load());
    let (peak, _) = stat(&|m| m.peak_network_load);
    println!("policy            {}", policy.name());
    println!("offered load      {erlangs} Erlang over {duration} time units x {reps} reps");
    println!("blocking          {bp:.3}% ± {bp_sd:.3}");
    println!("mean route cost   {cost:.2}");
    println!("mean network load {load:.3}");
    println!("peak network load {peak:.3}");
    if failure_rate > 0.0 {
        let cuts: u64 = runs.iter().map(|m| m.failures_injected).sum();
        let fast: u64 = runs.iter().map(|m| m.fast_switchovers).sum();
        let passive: u64 = runs.iter().map(|m| m.passive_recoveries).sum();
        let dropped: u64 = runs.iter().map(|m| m.recovery_failures).sum();
        println!(
            "fibre cuts        {cuts} (instant {fast}, recomputed {passive}, dropped {dropped})"
        );
    }
    if cfg.reconfig_threshold.is_some() {
        let rc: u64 = runs.iter().map(|m| m.reconfig_events).sum();
        let moved: u64 = runs.iter().map(|m| m.reconfig_moved).sum();
        println!("reconfigurations  {rc} (moved {moved} connections)");
    }
    if let (Some(mode), Some(snap)) = (telemetry_mode, &telemetry) {
        println!("--- telemetry ({} replications merged) ---", runs.len());
        if mode == "summary" {
            print!("{}", snap.summary());
        } else {
            let json = serde_json::to_string_pretty(snap).map_err(|e| e.to_string())?;
            println!("{json}");
        }
    }
    Ok(())
}

/// Bridges SIGINT into a simulator stop flag. Installing the handler
/// keeps the first Ctrl-C from killing the process; a watcher thread
/// trips `stop` instead, so the run ends at the next event boundary with
/// every recorded artefact intact. The watcher is detached — it dies
/// with the process on the normal exit path.
fn install_sigint_bridge(stop: std::sync::Arc<std::sync::atomic::AtomicBool>) {
    use wdm_serve::signal;
    if !signal::install(signal::SIGINT) {
        return; // No handler (non-unix or sigaction failure): Ctrl-C kills as before.
    }
    std::thread::spawn(move || loop {
        if signal::tripped(signal::SIGINT) {
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    });
}

/// `wdm replay` — reconstruct a recorded simulation's final state from its
/// journal and (with `--verify`) check it against the recorded hash.
///
/// Accepts both on-disk formats: a `wdm simulate --journal` document and a
/// `wdm serve` write-ahead log (sniffed by its `{"wal":…}` header line).
pub fn replay(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("missing journal file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if text.trim_start().starts_with("{\"wal\":") {
        return replay_wal(args, path);
    }
    let doc: JournalFile =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;

    let replayed = doc
        .journal
        .replay(&doc.network)
        .map_err(|e| format!("replay diverged: {e}"))?;
    let hash = replayed.semantic_hash();
    let verified = hash == doc.final_hash;

    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for ev in doc.journal.events() {
        *counts.entry(ev.kind().to_string()).or_default() += 1;
    }
    let load = load_snapshot(&doc.network, &replayed);

    // `--telemetry json|summary`: re-run the recorded simulation (the
    // journal embeds its full config) with a live recorder. Counters are
    // a pure function of (config, seed), so they must equal what the
    // original run would have recorded; only the `*_ns` timing histograms
    // differ between machines and runs.
    let replayed_telemetry = match args.get("telemetry") {
        None => None,
        Some(mode @ ("json" | "summary")) => {
            let cfg = doc.config;
            let sink = TelemetrySink::new();
            let seeds = replication_seeds(cfg.seed, 1);
            let sim_cfg = SimConfig {
                seed: seeds[0],
                ..cfg
            };
            let sim = Simulator::with_recorder(&doc.network, sim_cfg, &sink);
            let _ = sim.run();
            Some((mode, sink.snapshot()))
        }
        Some(other) => return Err(format!("--telemetry wants json|summary, got '{other}'")),
    };

    if args.flag("json") {
        let mut fields = vec![
            ("policy".to_string(), serde_json::to_value(&doc.policy)),
            ("seed".to_string(), serde_json::to_value(&doc.seed)),
            ("events".to_string(), serde_json::to_value(&counts)),
            ("final_load".to_string(), serde_json::to_value(&load)),
            (
                "recorded_hash".to_string(),
                serde_json::to_value(&doc.final_hash),
            ),
            ("replayed_hash".to_string(), serde_json::to_value(&hash)),
            ("verified".to_string(), serde_json::to_value(&verified)),
        ];
        if let Some((_, snap)) = &replayed_telemetry {
            fields.push(("telemetry".to_string(), serde_json::to_value(snap)));
        }
        let combined = serde_json::Value::Object(fields);
        let json = serde_json::to_string_pretty(&combined).map_err(|e| e.to_string())?;
        println!("{json}");
    } else {
        println!("policy       {}", doc.policy);
        println!("base seed    {}", doc.seed);
        println!("events       {}", doc.journal.len());
        for (kind, n) in &counts {
            println!("  {kind:<12} {n}");
        }
        println!(
            "final load   max {:.3}, p90 {:.3}, mean {:.3}",
            load.max, load.p90, load.mean
        );
        println!(
            "state hash   {:#018x} ({})",
            hash,
            if verified {
                "matches the recorded hash"
            } else {
                "MISMATCH against the recorded hash"
            }
        );
        if let Some((mode, snap)) = &replayed_telemetry {
            println!("--- replayed telemetry ---");
            if *mode == "summary" {
                print!("{}", snap.summary());
            } else {
                let json = serde_json::to_string_pretty(snap).map_err(|e| e.to_string())?;
                println!("{json}");
            }
        }
    }
    if args.flag("verify") && !verified {
        return Err(format!(
            "final-state hash mismatch: recorded {:#018x}, replayed {:#018x}",
            doc.final_hash, hash
        ));
    }
    Ok(())
}

/// `wdm replay` over a daemon write-ahead log. [`wdm_serve::wal::recover`]
/// already verifies the sequence chain, every checkpoint anchor, and the
/// graceful-close hash when one exists — reaching this function's body
/// means the lineage replayed consistently.
fn replay_wal(args: &Args, path: &str) -> Result<(), String> {
    let rec = wdm_serve::wal::recover(std::path::Path::new(path))
        .map_err(|e| format!("recovering {path}: {e}"))?;
    let hash = rec.semantic_hash();
    let load = load_snapshot(&rec.network, &rec.state);
    if args.flag("json") {
        let fields = vec![
            ("format".to_string(), serde_json::to_value(&"wal")),
            (
                "policy".to_string(),
                serde_json::to_value(&rec.policy.name()),
            ),
            ("events".to_string(), serde_json::to_value(&rec.seq)),
            ("final_load".to_string(), serde_json::to_value(&load)),
            ("replayed_hash".to_string(), serde_json::to_value(&hash)),
            (
                "anchors_verified".to_string(),
                serde_json::to_value(&rec.anchors_verified),
            ),
            (
                "clean_shutdown".to_string(),
                serde_json::to_value(&rec.clean_shutdown()),
            ),
            (
                "torn_tail".to_string(),
                serde_json::to_value(&rec.torn_tail),
            ),
        ];
        let json = serde_json::to_string_pretty(&serde_json::Value::Object(fields))
            .map_err(|e| e.to_string())?;
        println!("{json}");
    } else {
        println!("format       write-ahead log (wdm serve)");
        println!("policy       {}", rec.policy.name());
        println!("events       {}", rec.seq);
        println!(
            "final load   max {:.3}, p90 {:.3}, mean {:.3}",
            load.max, load.p90, load.mean
        );
        println!(
            "state hash   {hash:#018x} ({} checkpoint anchor(s) verified)",
            rec.anchors_verified
        );
        println!(
            "shutdown     {}{}",
            if rec.clean_shutdown() {
                "clean (graceful-close hash matches)"
            } else {
                "unclean (no graceful-close line — recovered from events)"
            },
            if rec.torn_tail {
                "; one torn tail line discarded"
            } else {
                ""
            }
        );
    }
    if args.flag("verify") && !rec.clean_shutdown() && rec.anchors_verified == 0 {
        return Err(
            "nothing to verify against: the log has neither a graceful-close line \
             nor a checkpoint anchor (the sequence chain itself was intact)"
                .into(),
        );
    }
    Ok(())
}

/// `wdm batch`.
pub fn batch(args: &Args) -> Result<(), String> {
    let net = load_network(args.require("net")?)?;
    let mesh: usize = args.get_or("mesh", 1)?;
    let policy = parse_policy(args.get("policy").unwrap_or("cost-only"))?;
    let order = match args.get("order").unwrap_or("as-given") {
        "as-given" => BatchOrder::AsGiven,
        "shortest-first" => BatchOrder::ShortestFirst,
        "longest-first" => BatchOrder::LongestFirst,
        other => return Err(format!("unknown order '{other}'")),
    };
    let window: usize = args.get_or("parallel-window", 1)?;
    if window == 0 {
        return Err("--parallel-window wants a positive window size".into());
    }
    let mut schedule = match args.get("schedule") {
        None => ScheduleMode::default(),
        Some(s) => ScheduleMode::parse(s).ok_or_else(|| {
            format!("unknown schedule '{s}' (expected 'windowed', 'conflict-groups' or 'sharded')")
        })?,
    };
    if let ScheduleMode::Sharded { shards } = &mut schedule {
        *shards = args.get_or("shards", DEFAULT_SHARDS)?;
        if *shards == 0 {
            return Err("--shards wants a positive shard count".into());
        }
    } else if args.get("shards").is_some() {
        return Err("--shards only applies to --schedule sharded".into());
    }
    let threads: usize = args.get_or("threads", 0)?;
    let state = ResidualState::fresh(&net);
    let demands = full_mesh_demands(net.node_count(), mesh);
    let cfg = BatchConfig {
        policy,
        order,
        parallel_window: window,
        schedule,
        threads,
    };
    let (out, stats) = run_batch_recorded(&net, &state, &demands, cfg, NoopRecorder);
    let snap = load_snapshot(&net, &out.state);
    println!(
        "accepted   {}/{} ({:.1}%)",
        out.provisioned.len(),
        demands.len(),
        out.acceptance_ratio(demands.len()) * 100.0
    );
    println!("total cost {:.1}", out.total_cost);
    println!(
        "final load max {:.3}, p90 {:.3}, mean {:.3}",
        snap.max, snap.p90, snap.mean
    );
    if window > 1 {
        println!(
            "speculation [{}] rounds {}, commits {}, aborts {} ({:.1}% abort rate), \
             retries {}, inline {}",
            schedule.name(),
            stats.rounds,
            stats.commits,
            stats.aborts,
            stats.abort_rate() * 100.0,
            stats.retries,
            stats.inline_routes
        );
        if let ScheduleMode::Sharded { shards } = schedule {
            println!(
                "sharding   {} shards, cut demands {} ({:.1}% of batch)",
                shards,
                stats.cut_demands,
                if demands.is_empty() {
                    0.0
                } else {
                    stats.cut_demands as f64 / demands.len() as f64 * 100.0
                }
            );
        }
    }
    Ok(())
}

/// `wdm trace <verb>`.
pub fn trace(args: &Args) -> Result<(), String> {
    match args.positional(0) {
        Some("analyze") => trace_analyze(args),
        Some(other) => Err(format!("unknown trace verb '{other}' (expected 'analyze')")),
        None => Err("usage: wdm trace analyze <trace.json> [--top K] [--json]".into()),
    }
}

/// `wdm trace analyze` — per-phase latency attribution, slowest requests
/// and abort causes from a `wdm simulate --trace` dump.
fn trace_analyze(args: &Args) -> Result<(), String> {
    let path = args.positional(1).ok_or("missing trace file")?;
    let top_k: usize = args.get_or("top", 5)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc: TraceFile = serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;

    let records = &doc.flight.records;
    if records.is_empty() {
        return Err("trace holds no flight records".into());
    }

    // Aggregate: total request time, per-phase attribution, the residual
    // the sub-phases do not cover (queueing between spans, bookkeeping),
    // outcome and abort-cause counts.
    let root = Phase::Request.name();
    let mut total_ns = 0u64;
    let mut attributed_ns = 0u64;
    let mut phase_sums: BTreeMap<String, u64> = BTreeMap::new();
    let mut outcomes: BTreeMap<String, u64> = BTreeMap::new();
    let mut abort_causes: BTreeMap<String, u64> = BTreeMap::new();
    for r in records {
        total_ns += r.total_ns;
        for (name, ns) in r.named_phases() {
            attributed_ns += ns;
            *phase_sums.entry(name.to_string()).or_default() += ns;
        }
        *outcomes.entry(r.outcome.clone()).or_default() += 1;
        if let Some(cause) = &r.abort_cause {
            *abort_causes.entry(cause.clone()).or_default() += 1;
        }
    }
    let attributed_fraction = if total_ns > 0 {
        attributed_ns as f64 / total_ns as f64
    } else {
        1.0
    };
    // The invariant the span layer guarantees: sub-phases nest inside the
    // root span, so attribution can never exceed the measured total.
    let phase_sum_ok = attributed_ns <= total_ns;

    let mut slowest: Vec<usize> = (0..records.len()).collect();
    slowest.sort_by_key(|&i| std::cmp::Reverse(records[i].total_ns));
    slowest.truncate(top_k);

    if args.flag("json") {
        let top: Vec<serde_json::Value> = slowest
            .iter()
            .map(|&i| {
                let r = &records[i];
                serde_json::Value::Object(vec![
                    ("request".to_string(), serde_json::to_value(&r.request)),
                    ("src".to_string(), serde_json::to_value(&r.src)),
                    ("dst".to_string(), serde_json::to_value(&r.dst)),
                    ("outcome".to_string(), serde_json::to_value(&r.outcome)),
                    ("total_ns".to_string(), serde_json::to_value(&r.total_ns)),
                    (
                        "journal_seq".to_string(),
                        serde_json::to_value(&r.journal_seq),
                    ),
                    (
                        "phases".to_string(),
                        serde_json::to_value(
                            &r.named_phases()
                                .into_iter()
                                .map(|(n, ns)| (n.to_string(), ns))
                                .collect::<BTreeMap<String, u64>>(),
                        ),
                    ),
                ])
            })
            .collect();
        let combined = serde_json::Value::Object(vec![
            ("policy".to_string(), serde_json::to_value(&doc.policy)),
            ("seed".to_string(), serde_json::to_value(&doc.seed)),
            ("offered".to_string(), serde_json::to_value(&doc.offered)),
            ("records".to_string(), serde_json::to_value(&records.len())),
            (
                "dropped".to_string(),
                serde_json::to_value(&doc.flight.dropped),
            ),
            ("outcomes".to_string(), serde_json::to_value(&outcomes)),
            (
                "abort_causes".to_string(),
                serde_json::to_value(&abort_causes),
            ),
            ("total_ns".to_string(), serde_json::to_value(&total_ns)),
            (
                "attributed_ns".to_string(),
                serde_json::to_value(&attributed_ns),
            ),
            (
                "attributed_fraction".to_string(),
                serde_json::to_value(&attributed_fraction),
            ),
            (
                "phase_sum_ok".to_string(),
                serde_json::to_value(&phase_sum_ok),
            ),
            ("phase_ns".to_string(), serde_json::to_value(&phase_sums)),
            (
                "anomaly_fired".to_string(),
                serde_json::to_value(&doc.flight.anomaly.is_some()),
            ),
            ("top".to_string(), serde_json::Value::Array(top)),
        ]);
        let json = serde_json::to_string_pretty(&combined).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }

    println!("policy        {}", doc.policy);
    println!(
        "records       {} of {} offered ({} dropped off the ring)",
        records.len(),
        doc.offered,
        doc.flight.dropped
    );
    for (outcome, n) in &outcomes {
        println!("  {outcome:<12} {n}");
    }
    if !abort_causes.is_empty() {
        println!("abort causes");
        for (cause, n) in &abort_causes {
            println!("  {cause:<12} {n}");
        }
    }
    println!(
        "latency       total {:.3} ms across {} requests ({} mean us/request)",
        total_ns as f64 / 1e6,
        records.len(),
        total_ns / records.len() as u64 / 1_000
    );
    println!(
        "attribution   {:.1}% of {root} time inside named sub-phases ({})",
        attributed_fraction * 100.0,
        if phase_sum_ok {
            "sums consistently"
        } else {
            "EXCEEDS the measured total"
        }
    );
    for (name, ns) in &phase_sums {
        println!(
            "  {name:<14} {:>10.3} ms ({:.1}%)",
            *ns as f64 / 1e6,
            *ns as f64 / total_ns.max(1) as f64 * 100.0
        );
    }
    if doc.flight.anomaly.is_some() {
        println!("anomaly       FIRED (see the trace file's anomaly snapshot)");
    }
    println!("slowest {} requests", slowest.len());
    for &i in &slowest {
        let r = &records[i];
        let phases: Vec<String> = r
            .named_phases()
            .iter()
            .map(|(n, ns)| format!("{n} {:.1}us", *ns as f64 / 1e3))
            .collect();
        println!(
            "  #{:<6} {} -> {} {:<8} {:>8.1}us  seq {}  [{}]",
            r.request,
            r.src,
            r.dst,
            r.outcome,
            r.total_ns as f64 / 1e3,
            r.journal_seq,
            phases.join(", ")
        );
    }
    Ok(())
}

/// `wdm serve-metrics` — run a simulation while exposing live telemetry as
/// a Prometheus text-format endpoint on a plain `TcpListener` (no HTTP
/// dependency; the exposition format is newline-delimited text).
pub fn serve_metrics(args: &Args) -> Result<(), String> {
    use std::io::Write;
    use std::sync::atomic::{AtomicBool, Ordering};

    let net = load_network(args.require("net")?)?;
    let erlangs: f64 = args.get_or("erlangs", 60.0)?;
    let duration: f64 = args.get_or("duration", 1000.0)?;
    let holding: f64 = args.get_or("holding", 10.0)?;
    let policy = parse_policy(args.get("policy").unwrap_or("cost-only"))?;
    let seed: u64 = args.get_or("seed", 1)?;
    let port: u16 = args.get_or("port", 9184)?;
    let serve_requests: u64 = args.get_or("serve-requests", 0)?;

    let cfg = SimConfig {
        policy,
        traffic: TrafficModel::new(erlangs / holding, holding),
        duration,
        failure_rate: args.get_or("failure-rate", 0.0)?,
        mean_repair: args.get_or("repair", 20.0)?,
        reconfig_threshold: None,
        seed: replication_seeds(seed, 1)[0],
        switchover_time: 0.001,
        setup_time_per_hop: 0.05,
    };

    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("binding 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // `--port 0` binds an ephemeral port; print the resolved address first
    // (and flushed) so scripted callers can scrape it.
    println!("serving http://{addr}/metrics");
    std::io::stdout().flush().ok();

    let sink = TelemetrySink::new();
    let done = AtomicBool::new(false);
    let mut served = 0u64;
    let metrics = std::thread::scope(|s| {
        let handle = s.spawn(|| {
            let m = Simulator::with_recorder(&net, cfg, &sink).run();
            done.store(true, Ordering::Release);
            m
        });
        // Poll-accept so the loop notices simulation completion: with
        // `--serve-requests N` it keeps serving until N responses went
        // out (even past completion — CI probes race the short sims);
        // without it, it serves whatever arrives while the run lasts.
        listener.set_nonblocking(true).ok();
        loop {
            let finished = done.load(Ordering::Acquire);
            if serve_requests > 0 {
                if served >= serve_requests && finished {
                    break;
                }
            } else if finished {
                break;
            }
            match listener.accept() {
                Ok((mut conn, _)) => {
                    conn.set_nonblocking(false).ok();
                    // The shared daemon listener does the parsing: size
                    // caps, timeouts, and malformed-head rejection all
                    // behave exactly as they do under `wdm serve`.
                    match wdm_serve::http::read_request(&mut conn) {
                        Ok(req) if req.target == "/metrics" => {
                            let body = sink.snapshot().prometheus("wdm");
                            wdm_serve::http::write_response(
                                &mut conn,
                                "200 OK",
                                "text/plain; version=0.0.4",
                                &[],
                                body.as_bytes(),
                            )
                            .ok();
                        }
                        Ok(_) => {
                            wdm_serve::http::write_response(
                                &mut conn,
                                "404 Not Found",
                                "text/plain",
                                &[],
                                b"only /metrics is exported\n",
                            )
                            .ok();
                        }
                        Err(e) => wdm_serve::http::answer_error(&mut conn, &e),
                    }
                    served += 1;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Err(e) => eprintln!("accept: {e}"),
            }
        }
        handle.join().expect("simulation thread panicked")
    });

    println!(
        "simulation done: {} offered, {} admitted, {:.3}% blocking; served {served} scrape(s)",
        metrics.offered,
        metrics.admitted,
        metrics.blocking_probability() * 100.0
    );
    Ok(())
}

/// `wdm serve` — the long-lived provisioning daemon (DESIGN.md §5i).
pub fn serve(args: &Args) -> Result<(), String> {
    use std::io::Write;
    use wdm_serve::daemon::{run, Control, ServeConfig};

    let net = load_network(args.require("net")?)?;
    let port: u16 = args.get_or("port", 9190)?;
    let wal_path = args.get("wal").unwrap_or("wdm-serve.wal.jsonl");
    let mut cfg = ServeConfig::new(format!("127.0.0.1:{port}"), wal_path);
    cfg.threads = args.get_or("threads", 4)?;
    cfg.policy = parse_policy(args.get("policy").unwrap_or("cost-only"))?;
    cfg.queue_capacity = args.get_or("queue", 256)?;
    cfg.deadline = std::time::Duration::from_millis(args.get_or("deadline-ms", 2000u64)?);
    cfg.checkpoint_every = args.get_or("checkpoint-every", 256)?;
    cfg.handle_signals = true; // SIGINT/SIGTERM drain, checkpoint, close.
                               // --trace FILE turns on end-to-end span recording (queue wait through
                               // WAL fsync); the file is `wdm trace analyze`-compatible and written
                               // at clean shutdown.
    cfg.trace_path = args.get("trace").map(std::path::PathBuf::from);
    cfg.flight_capacity = args.get_or("flight-cap", wdm_telemetry::DEFAULT_FLIGHT_CAPACITY)?;
    if cfg.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if cfg.queue_capacity == 0 {
        return Err("--queue must be at least 1".into());
    }
    if cfg.flight_capacity == 0 {
        return Err("--flight-cap must be at least 1".into());
    }
    if let Some(prev) = args.get("resume") {
        // Crash recovery: replay the previous WAL and seed the daemon
        // with its state. The new WAL must be a different file — its
        // header checkpoint *is* the recovered state.
        if prev == wal_path {
            return Err("--resume must name a different file than --wal".into());
        }
        let rec = wdm_serve::wal::recover(std::path::Path::new(prev))
            .map_err(|e| format!("recovering {prev}: {e}"))?;
        eprintln!(
            "resuming from {prev}: {} event(s), hash {:#018x}{}",
            rec.seq,
            rec.semantic_hash(),
            if rec.clean_shutdown() {
                ""
            } else {
                " (unclean shutdown — recovered from events)"
            }
        );
        cfg.resume_state = Some(rec.state);
    }

    let control = Control::new();
    let report = std::thread::scope(|s| {
        // The daemon owns this thread until shutdown; a sidecar waits for
        // the bind and prints the resolved address (so `--port 0` works
        // for scripts). If the bind fails, `run` returns before ever
        // publishing and the sidecar times out silently.
        s.spawn(|| {
            if let Some(addr) = control.wait_addr(std::time::Duration::from_secs(5)) {
                println!("serving http://{addr}/ (wal: {wal_path})");
                std::io::stdout().flush().ok();
            }
        });
        run(&net, &cfg, &control)
    })
    .map_err(|e| format!("serve: {e}"))?;

    if args.flag("json") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        println!("{json}");
    } else {
        println!(
            "shutdown     {}",
            if report.clean_shutdown {
                "clean (final checkpoint + graceful-close line flushed)"
            } else {
                "crash-style (no close line)"
            }
        );
        println!("journal      {} event(s) in {wal_path}", report.journal_seq);
        println!("connections  {} live at shutdown", report.connections);
        println!("state hash   {:#018x}", report.semantic_hash);
        for (name, v) in &report.counters {
            println!("  {name:<24} {v}");
        }
    }
    Ok(())
}

/// `wdm loadgen` — open-loop Poisson load against a running daemon.
pub fn loadgen(args: &Args) -> Result<(), String> {
    use wdm_serve::loadgen::LoadgenConfig;

    let target = args.require("target")?;
    // Endpoint/link ranges come from the served network file (preferred)
    // or explicit counts — the generator itself never loads the topology.
    let (nodes, links) = if let Some(netfile) = args.get("net") {
        let net = load_network(netfile)?;
        (net.node_count() as u32, net.link_count() as u32)
    } else {
        let nodes: u32 = args
            .get("nodes")
            .ok_or("missing --net FILE (or explicit --nodes/--links)")?
            .parse()
            .map_err(|e| format!("bad value for --nodes: {e}"))?;
        (nodes, args.get_or("links", 0)?)
    };
    if nodes < 2 {
        return Err("need at least two nodes to provision".into());
    }
    let mut cfg = LoadgenConfig::new(target, nodes, links);
    cfg.rate = args.get_or("rate", 200.0)?;
    cfg.duration = args.get_or("duration", 5.0)?;
    cfg.mean_hold = args.get_or("hold", 1.0)?;
    cfg.fail_fraction = args.get_or("fail-fraction", 0.01)?;
    cfg.seed = args.get_or("seed", 1)?;
    // Negated comparisons are deliberate: NaN must be rejected too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(cfg.rate > 0.0) || !(cfg.duration > 0.0) || !(cfg.mean_hold > 0.0) {
        return Err("rate, duration and hold must all be positive".into());
    }
    if !(0.0..=1.0).contains(&cfg.fail_fraction) {
        return Err("--fail-fraction wants a value in [0, 1]".into());
    }

    let report = wdm_serve::loadgen::run(&cfg);
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    if let Some(out) = args.get("out") {
        std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    }
    if args.flag("json") {
        println!("{json}");
    } else {
        println!(
            "offered      {} request(s) in {:.2}s ({:.0} req/s)",
            report.offered, report.elapsed, report.rps
        );
        println!(
            "outcomes     {} ok, {} blocked (409), {} shed (503), {} error(s)",
            report.ok, report.blocked, report.shed, report.errors
        );
        println!(
            "latency      p50 {:.2} ms, p99 {:.2} ms",
            report.p50_ms, report.p99_ms
        );
        if !report.server_phases.is_empty() {
            println!("server phases (scraped from /metrics):");
            for p in &report.server_phases {
                println!(
                    "  {:<20} {:>8} obs   p50 {:>9.3} ms   p99 {:>9.3} ms",
                    p.phase, p.count, p.p50_ms, p.p99_ms
                );
            }
        }
    }
    Ok(())
}

/// `wdm telemetry <verb>`.
pub fn telemetry(args: &Args) -> Result<(), String> {
    match args.positional(0) {
        Some("diff") => telemetry_diff(args),
        Some("assert") => telemetry_assert(args),
        Some(other) => Err(format!(
            "unknown telemetry verb '{other}' (expected 'diff' or 'assert')"
        )),
        None => Err(
            "usage: wdm telemetry diff <baseline.json> <candidate.json> \
                     [--metrics SUBSTR] [--fail-drop PCT]\n\
             \x20      wdm telemetry assert <file.json> --metric PATH [--min X] [--max X]"
                .into(),
        ),
    }
}

/// `wdm telemetry assert` — absolute gate on one metric of a JSON file.
///
/// Complements `telemetry diff`'s relative gate: where diff compares a
/// candidate against a baseline, assert checks a single dotted-path metric
/// against fixed bounds (`--min` and/or `--max`), exiting non-zero on
/// violation. The CI batch-scheduling leg uses it to pin abort rates and
/// speedup ratios to absolute budgets no re-baselining can erode.
fn telemetry_assert(args: &Args) -> Result<(), String> {
    let path = args.positional(1).ok_or("missing telemetry file")?;
    let metric = args.require("metric")?;
    let min = args.get("min").map(str::parse::<f64>).transpose();
    let min = min.map_err(|e| format!("bad value for --min: {e}"))?;
    let max = args.get("max").map(str::parse::<f64>).transpose();
    let max = max.map_err(|e| format!("bad value for --max: {e}"))?;
    if min.is_none() && max.is_none() {
        return Err("telemetry assert wants --min and/or --max".into());
    }
    let flat = flatten_json_file(path)?;
    let &value = flat.get(metric).ok_or_else(|| {
        let mut near: Vec<&str> = flat
            .keys()
            .filter(|k| k.contains(metric) || metric.contains(k.as_str()))
            .map(|k| k.as_str())
            .take(5)
            .collect();
        if near.is_empty() {
            near = flat.keys().map(|k| k.as_str()).take(5).collect();
        }
        format!(
            "metric '{metric}' not found in {path} (nearby: {})",
            near.join(", ")
        )
    })?;
    let mut violations = Vec::new();
    if let Some(lo) = min {
        if value < lo || value.is_nan() {
            violations.push(format!("{value:.4} < required minimum {lo}"));
        }
    }
    if let Some(hi) = max {
        if value > hi || value.is_nan() {
            violations.push(format!("{value:.4} > allowed maximum {hi}"));
        }
    }
    let bounds = match (min, max) {
        (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
        (Some(lo), None) => format!(">= {lo}"),
        (None, Some(hi)) => format!("<= {hi}"),
        (None, None) => unreachable!("checked above"),
    };
    if violations.is_empty() {
        println!("{metric} = {value:.4} ok ({bounds})");
        Ok(())
    } else {
        Err(format!("{metric}: {}", violations.join("; ")))
    }
}

/// `wdm telemetry diff` — per-metric deltas between two JSON files.
///
/// Works on any JSON whose leaves are numbers (telemetry snapshots, the
/// BENCH_*.json experiment outputs, combined simulate dumps): the files are
/// flattened to dotted paths and compared metric-by-metric. With
/// `--fail-drop PCT` the command exits non-zero when any selected metric
/// falls more than PCT percent below the baseline — the CI perf gate.
fn telemetry_diff(args: &Args) -> Result<(), String> {
    let a_path = args.positional(1).ok_or("missing baseline file")?;
    let b_path = args.positional(2).ok_or("missing candidate file")?;
    let filter = args.get("metrics");
    let fail_drop: f64 = args.get_or("fail-drop", 0.0)?;
    if fail_drop < 0.0 {
        return Err("--fail-drop wants a non-negative percentage".into());
    }
    let a = flatten_json_file(a_path)?;
    let b = flatten_json_file(b_path)?;

    let keys: BTreeSet<&String> = a
        .keys()
        .chain(b.keys())
        .filter(|k| filter.is_none_or(|f| k.contains(f)))
        .collect();
    if keys.is_empty() {
        return Err(match filter {
            Some(f) => format!("no numeric metrics matching '{f}' in either file"),
            None => "no numeric metrics in either file".into(),
        });
    }

    println!(
        "{:<44} {:>14} {:>14} {:>9}",
        "metric", "baseline", "candidate", "delta"
    );
    let mut regressions = Vec::new();
    for key in keys {
        match (a.get(key), b.get(key)) {
            (Some(&va), Some(&vb)) => {
                let delta = if va != 0.0 {
                    format!("{:+.1}%", (vb - va) / va * 100.0)
                } else if vb == 0.0 {
                    "0.0%".to_string()
                } else {
                    "new".to_string()
                };
                println!("{key:<44} {va:>14.3} {vb:>14.3} {delta:>9}");
                if fail_drop > 0.0 && va > 0.0 && (vb - va) / va * 100.0 < -fail_drop {
                    regressions.push(format!(
                        "{key}: {va:.3} -> {vb:.3} ({:+.1}%, limit -{fail_drop}%)",
                        (vb - va) / va * 100.0
                    ));
                }
            }
            (Some(&va), None) => println!("{key:<44} {va:>14.3} {:>14} {:>9}", "-", "gone"),
            (None, Some(&vb)) => println!("{key:<44} {:>14} {vb:>14.3} {:>9}", "-", "new"),
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} metric(s) regressed beyond {fail_drop}%:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ))
    }
}

/// Loads a JSON file and flattens every numeric leaf to a dotted path.
fn flatten_json_file(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut out = BTreeMap::new();
    flatten_value("", &value, &mut out);
    Ok(out)
}

fn flatten_value(prefix: &str, value: &serde_json::Value, out: &mut BTreeMap<String, f64>) {
    let join = |key: &str| {
        if prefix.is_empty() {
            key.to_string()
        } else {
            format!("{prefix}.{key}")
        }
    };
    match value {
        serde_json::Value::Number(n) => {
            out.insert(prefix.to_string(), n.as_f64());
        }
        serde_json::Value::Object(fields) => {
            for (k, v) in fields {
                flatten_value(&join(k), v, out);
            }
        }
        serde_json::Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten_value(&join(&i.to_string()), v, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parser_accepts_all_names() {
        for p in [
            "cost-only",
            "load-only",
            "joint",
            "joint-as-printed",
            "two-step",
            "unrefined",
            "ksp",
            "node-disjoint",
            "primary-only",
        ] {
            assert!(parse_policy(p).is_ok(), "{p}");
        }
        assert!(parse_policy("nonsense").is_err());
    }

    #[test]
    fn conversion_parser() {
        assert_eq!(
            parse_conversion("none", 1.0).unwrap(),
            ConversionTable::None
        );
        assert_eq!(
            parse_conversion("full:auto", 2.5).unwrap(),
            ConversionTable::Full { cost: 2.5 }
        );
        assert_eq!(
            parse_conversion("full:1.25", 9.0).unwrap(),
            ConversionTable::Full { cost: 1.25 }
        );
        assert_eq!(
            parse_conversion("range:2:0.5", 9.0).unwrap(),
            ConversionTable::Range {
                range: 2,
                cost: 0.5
            }
        );
        assert!(parse_conversion("bogus", 1.0).is_err());
    }

    #[test]
    fn flatten_value_walks_nested_json() {
        let v: serde_json::Value = serde_json::from_str(
            r#"{"a": 1, "b": {"c": 2.5, "d": [10, 20]}, "e": "text", "f": null}"#,
        )
        .unwrap();
        let mut out = BTreeMap::new();
        flatten_value("", &v, &mut out);
        assert_eq!(out["a"], 1.0);
        assert_eq!(out["b.c"], 2.5);
        assert_eq!(out["b.d.0"], 10.0);
        assert_eq!(out["b.d.1"], 20.0);
        assert_eq!(out.len(), 4, "non-numeric leaves are skipped: {out:?}");
    }

    #[test]
    fn telemetry_diff_gates_on_drop() {
        let dir = std::env::temp_dir().join("wdm_cli_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, r#"{"speedup": 10.0, "other": 1.0}"#).unwrap();
        std::fs::write(&b, r#"{"speedup": 8.0, "other": 1.0}"#).unwrap();
        let argv = |extra: &[&str]| {
            let mut v = vec![
                "diff".to_string(),
                a.to_string_lossy().into_owned(),
                b.to_string_lossy().into_owned(),
            ];
            v.extend(extra.iter().map(|s| s.to_string()));
            Args::parse(&v).unwrap()
        };
        // 20% drop: passes a 25% gate, fails a 15% gate.
        assert!(telemetry(&argv(&["--fail-drop", "25"])).is_ok());
        let err = telemetry(&argv(&["--fail-drop", "15"])).unwrap_err();
        assert!(err.contains("speedup"), "{err}");
        // Filtering to an unaffected metric passes.
        assert!(telemetry(&argv(&["--metrics", "other", "--fail-drop", "15"])).is_ok());
        // No gate: informational diff always succeeds.
        assert!(telemetry(&argv(&[])).is_ok());
    }
}
