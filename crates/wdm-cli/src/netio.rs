//! Loading and saving networks in the `.wdm` text or JSON formats.

use wdm_core::io::{parse_network, write_network};
use wdm_core::network::WdmNetwork;

/// Loads a network from a path; the format is chosen by extension
/// (`.json` = serde JSON, anything else = `.wdm` text).
pub fn load_network(path: &str) -> Result<WdmNetwork, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if path.ends_with(".json") {
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
    } else {
        parse_network(&text).map_err(|e| format!("parsing {path}: {e}"))
    }
}

/// Renders a network in the requested format (`wdm`, `json` or `dot`).
pub fn render_network(net: &WdmNetwork, format: &str) -> Result<String, String> {
    match format {
        "wdm" => write_network(net).map_err(|e| e.to_string()),
        "json" => serde_json::to_string_pretty(net).map_err(|e| e.to_string()),
        "dot" => Ok(wdm_graph::dot::to_dot(
            net.graph(),
            "wdm",
            |v, _| format!("{}", v.0),
            |e, data| {
                let _ = e;
                format!("{:.1} ({}λ)", data.base_cost, data.lambda.count())
            },
        )),
        other => Err(format!("unknown format '{other}' (wdm | json | dot)")),
    }
}

/// Writes `content` to `--out FILE`, or stdout when absent.
pub fn emit(out: Option<&str>, content: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, content).map_err(|e| format!("writing {path}: {e}")),
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::network::NetworkBuilder;

    #[test]
    fn round_trip_wdm_and_json_files() {
        let net = NetworkBuilder::nsfnet(8).build();
        let dir = std::env::temp_dir().join("wdm-cli-test");
        std::fs::create_dir_all(&dir).unwrap();

        let wdm_path = dir.join("n.wdm");
        std::fs::write(&wdm_path, render_network(&net, "wdm").unwrap()).unwrap();
        let a = load_network(wdm_path.to_str().unwrap()).unwrap();
        assert_eq!(a.node_count(), 14);

        let json_path = dir.join("n.json");
        std::fs::write(&json_path, render_network(&net, "json").unwrap()).unwrap();
        let b = load_network(json_path.to_str().unwrap()).unwrap();
        assert_eq!(b.link_count(), 42);

        let dot = render_network(&net, "dot").unwrap();
        assert!(dot.starts_with("digraph"));

        assert!(render_network(&net, "csv").is_err());
    }
}
