//! Minimal argument parsing (no external dependencies): positional
//! arguments followed by `--key value` / `--flag` options.

use std::collections::BTreeMap;

/// Parsed command line: positionals plus options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Keys that are boolean flags (no value follows).
const FLAG_KEYS: &[&str] = &["json", "quiet", "help", "verify"];

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    pub fn parse(raw: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = raw.iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err("stray '--'".into());
                }
                if FLAG_KEYS.contains(&key) {
                    out.flags.push(key.to_string());
                } else if let Some((k, v)) = key.split_once('=') {
                    out.options.insert(k.to_string(), v.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("option --{key} needs a value"))?;
                    out.options.insert(key.to_string(), value.clone());
                }
            } else {
                out.positionals.push(tok.clone());
            }
        }
        Ok(out)
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(|s| s.as_str())
    }

    /// Number of positionals.
    #[allow(dead_code)] // part of the parser's public surface, used by tests
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Typed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad value for --{key}: {e}")),
        }
    }

    /// Required typed option.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.require(key)?
            .parse()
            .map_err(|e| format!("bad value for --{key}: {e}"))
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn positionals_and_options_mix() {
        let a = args(&["nsfnet", "--wavelengths", "8", "--out", "x.wdm", "--json"]);
        assert_eq!(a.positional(0), Some("nsfnet"));
        assert_eq!(a.positional_count(), 1);
        assert_eq!(a.get("wavelengths"), Some("8"));
        assert_eq!(a.get_or("wavelengths", 4usize).unwrap(), 8);
        assert_eq!(a.get_or("missing", 4usize).unwrap(), 4);
        assert!(a.flag("json"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn equals_syntax() {
        let a = args(&["--erlangs=80", "--policy=joint"]);
        assert_eq!(a.get("erlangs"), Some("80"));
        assert_eq!(a.get("policy"), Some("joint"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = Args::parse(&["--out".to_string()]).unwrap_err();
        assert!(e.contains("needs a value"));
    }

    #[test]
    fn required_and_typed_errors() {
        let a = args(&["--n", "abc"]);
        assert!(a.require("missing").is_err());
        assert!(a.require_parsed::<usize>("n").is_err());
    }
}
