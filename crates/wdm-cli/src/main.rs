//! `wdm` — command-line interface to the robust-routing library.
//!
//! ```text
//! wdm topology nsfnet --wavelengths 8 --out nsfnet.wdm
//! wdm info --net nsfnet.wdm
//! wdm route --net nsfnet.wdm --from 0 --to 13 --policy joint
//! wdm simulate --net nsfnet.wdm --erlangs 80 --duration 1000 --policy cost-only
//! wdm batch --net nsfnet.wdm --mesh 1 --policy joint --order longest-first
//! ```

mod args;
mod commands;
mod netio;

use args::Args;

const USAGE: &str = "\
wdm — robust routing in wide-area WDM networks (Liang, IPPS 2001)

USAGE:
  wdm <COMMAND> [OPTIONS]

COMMANDS:
  topology <PRESET>   generate a network (presets: nsfnet, arpanet,
                      ring:N, grid:WxH, waxman:N)
      --wavelengths W   channels per fibre (default 8)
      --conversion C    none | full:COST | range:K:COST (default full:auto)
      --format F        wdm | json | dot (default wdm)
      --out FILE        write to file instead of stdout
      --seed S          RNG seed for random presets (default 1)

  info      --net FILE        print topology/capacity statistics

  route     --net FILE --from S --to T
      --policy P        cost-only | load-only | joint | two-step |
                        unrefined | ksp | node-disjoint | primary-only
                        (default cost-only)
      --json            machine-readable output

  simulate  --net FILE --erlangs E --duration D
      --policy P        as above (default cost-only)
      --holding H       mean holding time (default 10)
      --seed S          base seed (default 1)
      --reps N          replications, run in parallel (default 1)
      --failure-rate F  fibre-cut rate (default 0)
      --repair R        mean repair time (default 20)
      --reconfig T      reconfiguration load threshold (default off)
      --telemetry M     json | summary: collect and print merged telemetry
      --journal FILE    record the event journal (checkpoint + every
                        provision/teardown/failure/repair/reconfigure) to
                        FILE as JSON; wants --reps 1; Ctrl-C stops at an
                        event boundary and the journal still verifies
      --trace FILE      record per-request spans + flight records (phase
                        latencies, outcomes, journal correlation) to FILE
                        as JSON; wants --reps 1; combines with --journal
      --flight-cap N    flight-recorder ring capacity (default 512)
      --json            machine-readable output

  replay <JOURNAL.json | WAL.jsonl>
      --verify          exit non-zero unless the replayed final state's
                        hash matches the recorded one; daemon write-ahead
                        logs (from 'wdm serve') are detected by their
                        header and verified against their checkpoint
                        anchors and graceful-close hash
      --telemetry M     json | summary: re-run the recorded simulation
                        from the journal's embedded config with a live
                        recorder and print its telemetry (simulation
                        journals only)
      --json            machine-readable output

  serve     --net FILE  long-lived provisioning daemon: POST /provision
                        {src,dst} | /teardown {id} | /fail-link {link} |
                        /repair-link {link}; GET /state /metrics /healthz
      --port P          listen on 127.0.0.1:P (default 9190; 0 picks an
                        ephemeral port, printed on startup)
      --threads N       worker threads, each with a warm router context
                        (default 4)
      --policy P        as above (default cost-only)
      --wal FILE        write-ahead log; every mutation is flushed before
                        its response (default wdm-serve.wal.jsonl)
      --queue N         admission queue depth; full sheds 503 (default 256)
      --deadline-ms MS  drop requests that waited longer (default 2000)
      --checkpoint-every N  WAL checkpoint anchor cadence (default 256)
      --resume WAL      recover a previous log and resume from its state
      --json            print the shutdown report as JSON
                        (SIGINT/SIGTERM shut down gracefully: drain,
                        final checkpoint, graceful-close line)

  loadgen   --target HOST:PORT --net FILE
      --nodes N --links L   endpoint/link ranges when --net is omitted
      --rate R          provision arrivals per second, Poisson (default 200)
      --duration S      run length in wall-clock seconds (default 5)
      --hold H          mean holding time before teardown (default 1)
      --fail-fraction F fraction of arrivals failing a link (default 0.01)
      --seed S          RNG seed (default 1)
      --out FILE        write the JSON report to FILE
      --json            print the report as JSON

  trace analyze <TRACE.json>
      --top K           show the K slowest requests (default 5)
      --json            machine-readable output

  serve-metrics --net FILE
      --port P          listen on 127.0.0.1:P (default 9184; 0 picks an
                        ephemeral port, printed on startup)
      --serve-requests N  keep serving until N scrapes answered (default:
                        exit when the simulation ends)
      --erlangs E --duration D --holding H --policy P --seed S
                        simulation shape, as in 'wdm simulate'

  batch     --net FILE --mesh K
      --policy P        as above (default cost-only)
      --order O         as-given | shortest-first | longest-first
      --parallel-window K   speculate K demands per round (default 1 =
                        serial; results are bit-identical for every K)
      --schedule S      windowed | conflict-groups (default) | sharded:
                        how the speculative engine picks each round's
                        demands
      --shards S        shard count for --schedule sharded (default 4)
      --threads N       worker threads for speculative routing (default
                        0 = all available cores)

  telemetry diff <BASELINE.json> <CANDIDATE.json>
      --metrics SUBSTR  only compare metrics whose dotted path contains SUBSTR
      --fail-drop PCT   exit non-zero if any compared metric drops > PCT%
                        below the baseline (the CI perf gate)

  telemetry assert <FILE.json> --metric PATH
      --min X           exit non-zero unless metric >= X
      --max X           exit non-zero unless metric <= X
                        (absolute gates; PATH is the exact dotted path)
";

fn main() {
    // Piping output through `head` and friends closes stdout early; the
    // resulting println! panic ("Broken pipe") is normal Unix usage, not a
    // crash — suppress its report and exit 0 like other CLI tools.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !panic_is_broken_pipe(info.payload()) {
            default_hook(info);
        }
    }));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match std::panic::catch_unwind(|| run(&argv)) {
        Ok(Ok(())) => 0,
        Ok(Err(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("run 'wdm help' for usage");
            2
        }
        Err(payload) => {
            if panic_is_broken_pipe(payload.as_ref()) {
                0
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    };
    std::process::exit(code);
}

/// Whether a panic payload is the stdlib's broken-pipe print failure.
fn panic_is_broken_pipe(payload: &(dyn std::any::Any + Send)) -> bool {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("");
    msg.contains("Broken pipe")
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let rest = Args::parse(&argv[1..])?;
    if rest.flag("help") {
        println!("{USAGE}");
        return Ok(());
    }
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        "topology" => commands::topology(&rest),
        "info" => commands::info(&rest),
        "route" => commands::route(&rest),
        "simulate" => commands::simulate(&rest),
        "replay" => commands::replay(&rest),
        "serve" => commands::serve(&rest),
        "loadgen" => commands::loadgen(&rest),
        "batch" => commands::batch(&rest),
        "telemetry" => commands::telemetry(&rest),
        "trace" => commands::trace(&rest),
        "serve-metrics" => commands::serve_metrics(&rest),
        other => Err(format!("unknown command '{other}'")),
    }
}
