//! End-to-end tests of the `wdm` binary (invoked as a process).

use std::path::PathBuf;
use std::process::Command;

fn wdm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wdm"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("wdm-cli-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn help_prints_usage() {
    let out = wdm().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("topology"));
    assert!(text.contains("simulate"));
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let out = wdm().output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = wdm().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn topology_info_route_pipeline() {
    let net_path = tmp("pipeline.wdm");
    let out = wdm()
        .args([
            "topology",
            "nsfnet",
            "--wavelengths",
            "8",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(net_path.exists());

    let out = wdm()
        .args(["info", "--net", net_path.to_str().expect("utf8")])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nodes            14"));
    assert!(text.contains("robust routing feasible everywhere"));

    let out = wdm()
        .args([
            "route",
            "--net",
            net_path.to_str().expect("utf8"),
            "--from",
            "0",
            "--to",
            "13",
            "--policy",
            "joint",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("primary:"));
    assert!(text.contains("backup"));
    assert!(text.contains("total cost"));
}

#[test]
fn route_json_output_is_parseable() {
    let net_path = tmp("json_route.wdm");
    assert!(wdm()
        .args([
            "topology",
            "ring:6",
            "--wavelengths",
            "4",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    let out = wdm()
        .args([
            "route",
            "--net",
            net_path.to_str().expect("utf8"),
            "--from",
            "0",
            "--to",
            "3",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("route --json must emit valid JSON");
    assert!(v.get("Protected").is_some(), "{v}");
}

#[test]
fn simulate_runs_and_reports() {
    let net_path = tmp("sim.wdm");
    assert!(wdm()
        .args([
            "topology",
            "nsfnet",
            "--wavelengths",
            "8",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    let out = wdm()
        .args([
            "simulate",
            "--net",
            net_path.to_str().expect("utf8"),
            "--erlangs",
            "10",
            "--duration",
            "50",
            "--seed",
            "7",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("blocking"));
    assert!(text.contains("mean route cost"));
}

#[test]
fn routing_failure_maps_to_error_exit() {
    // A 3-node chain has no protected route.
    let net_path = tmp("chain.wdm");
    std::fs::write(
        &net_path,
        "wavelengths 2\nnode 0 conv=none\nnode 1 conv=none\nnode 2 conv=none\n\
         link 0 1 cost=1\nlink 1 2 cost=1\n",
    )
    .expect("write");
    let out = wdm()
        .args([
            "route",
            "--net",
            net_path.to_str().expect("utf8"),
            "--from",
            "0",
            "--to",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("routing failed"));
}

#[test]
fn out_of_range_node_is_a_clean_error() {
    let net_path = tmp("range.wdm");
    assert!(wdm()
        .args([
            "topology",
            "ring:5",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    let out = wdm()
        .args([
            "route",
            "--net",
            net_path.to_str().expect("utf8"),
            "--from",
            "0",
            "--to",
            "99",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("node ids must be in 0..5"), "{err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn non_positive_simulate_params_are_clean_errors() {
    let net_path = tmp("params.wdm");
    assert!(wdm()
        .args([
            "topology",
            "ring:5",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    for bad in [
        ["--erlangs", "-5", "--duration", "10"],
        ["--erlangs", "0", "--duration", "10"],
        ["--erlangs", "5", "--duration", "0"],
    ] {
        let out = wdm()
            .args(["simulate", "--net", net_path.to_str().expect("utf8")])
            .args(bad)
            .output()
            .expect("spawn");
        assert!(!out.status.success());
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("must all be positive"), "{err}");
        assert!(!err.contains("panicked"), "must not panic: {err}");
    }
}

#[test]
fn journal_record_and_replay_verify() {
    let net_path = tmp("journal.wdm");
    assert!(wdm()
        .args([
            "topology",
            "nsfnet",
            "--wavelengths",
            "8",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    let journal_path = tmp("journal.json");
    let out = wdm()
        .args([
            "simulate",
            "--net",
            net_path.to_str().expect("utf8"),
            "--erlangs",
            "40",
            "--duration",
            "100",
            "--seed",
            "3",
            "--failure-rate",
            "0.02",
            "--reconfig",
            "0.7",
            "--journal",
            journal_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = wdm()
        .args(["replay", journal_path.to_str().expect("utf8"), "--verify"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "replay --verify must pass on an untampered journal: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("provision"), "{text}");
    assert!(text.contains("matches the recorded hash"), "{text}");

    // Tampering with the recorded hash must flip --verify to a failure.
    let doc = std::fs::read_to_string(&journal_path).expect("read journal");
    let mut v: serde_json::Value = serde_json::from_str(&doc).expect("journal is JSON");
    if let serde_json::Value::Object(fields) = &mut v {
        for (k, val) in fields.iter_mut() {
            if k == "final_hash" {
                *val = serde_json::to_value(&1234567u64);
            }
        }
    }
    let bad_path = tmp("journal_bad.json");
    std::fs::write(&bad_path, serde_json::to_string(&v).expect("render")).expect("write");
    let out = wdm()
        .args(["replay", bad_path.to_str().expect("utf8"), "--verify"])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "tampered hash must fail --verify");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("hash mismatch"), "{err}");

    // --journal is a single-run recording: multi-rep invocations refuse.
    let out = wdm()
        .args([
            "simulate",
            "--net",
            net_path.to_str().expect("utf8"),
            "--erlangs",
            "10",
            "--duration",
            "20",
            "--reps",
            "2",
            "--journal",
            journal_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--reps 1"));
}

#[test]
fn dot_format_renders() {
    let out = wdm()
        .args(["topology", "grid:3x3", "--format", "dot"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));
}

/// Drops `*_ns` timing histograms (wall-clock, machine-dependent) from a
/// telemetry snapshot value; counters and event-shape histograms are pure
/// functions of (config, seed) and must reproduce exactly.
fn comparable_telemetry(telemetry: &serde_json::Value) -> serde_json::Value {
    let counters = telemetry.get("counters").expect("counters").clone();
    let hists: Vec<(String, serde_json::Value)> = telemetry
        .get("histograms")
        .and_then(|h| h.as_object())
        .expect("histograms")
        .iter()
        .filter(|(name, _)| !name.ends_with("_ns"))
        .cloned()
        .collect();
    serde_json::Value::Object(vec![
        ("counters".to_string(), counters),
        ("histograms".to_string(), serde_json::Value::Object(hists)),
    ])
}

#[test]
fn trace_record_and_analyze() {
    let net_path = tmp("trace.wdm");
    assert!(wdm()
        .args([
            "topology",
            "nsfnet",
            "--wavelengths",
            "8",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    let trace_path = tmp("trace.json");
    let out = wdm()
        .args([
            "simulate",
            "--net",
            net_path.to_str().expect("utf8"),
            "--erlangs",
            "60",
            "--duration",
            "200",
            "--policy",
            "cost-only",
            "--seed",
            "3",
            "--trace",
            trace_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Text report renders.
    let out = wdm()
        .args(["trace", "analyze", trace_path.to_str().expect("utf8")])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("routed"), "{text}");
    assert!(text.contains("latency"), "{text}");

    // JSON report: the span layer's structural invariant (sub-phase time
    // nests inside each request's root span) and the per-phase attribution
    // covering the bulk of measured time.
    let out = wdm()
        .args([
            "trace",
            "analyze",
            trace_path.to_str().expect("utf8"),
            "--json",
            "--top",
            "3",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("trace analyze emits JSON");
    assert_eq!(
        v.get("phase_sum_ok"),
        Some(&serde_json::Value::Bool(true)),
        "sub-phase durations must nest inside each root span"
    );
    let fraction = match v.get("attributed_fraction") {
        Some(serde_json::Value::Number(n)) => n.as_f64(),
        other => panic!("attributed_fraction missing: {other:?}"),
    };
    // The acceptance bar is 95% on a quiet machine; leave headroom for
    // noisy CI schedulers inflating the root span between sub-phases.
    assert!(
        fraction > 0.90,
        "per-phase attribution explains only {:.1}% of measured time",
        fraction * 100.0
    );
    let phases = v
        .get("phase_ns")
        .and_then(|p| p.as_object())
        .expect("phase_ns object");
    for required in ["suurballe_p1", "suurballe_p2", "commit"] {
        let ns = phases
            .iter()
            .find(|(k, _)| k == required)
            .map(|(_, val)| match val {
                serde_json::Value::Number(n) => n.as_f64(),
                _ => 0.0,
            })
            .unwrap_or(0.0);
        assert!(ns > 0.0, "phase '{required}' recorded no time: {phases:?}");
    }
    let top = v.get("top").and_then(|t| t.as_array()).expect("top array");
    assert!(!top.is_empty() && top.len() <= 3, "top-K wants K entries");
    for entry in top {
        assert!(entry.get("journal_seq").is_some(), "top entries correlate");
    }
}

#[test]
fn replay_telemetry_matches_live() {
    let net_path = tmp("replay_telemetry.wdm");
    assert!(wdm()
        .args([
            "topology",
            "nsfnet",
            "--wavelengths",
            "8",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    for policy in ["cost-only", "joint"] {
        for seed in ["3", "9"] {
            let base = [
                "simulate",
                "--net",
                net_path.to_str().expect("utf8"),
                "--erlangs",
                "40",
                "--duration",
                "120",
                "--policy",
                policy,
                "--seed",
                seed,
            ];
            let out = wdm()
                .args(base)
                .args(["--telemetry", "json", "--json"])
                .output()
                .expect("spawn");
            assert!(
                out.status.success(),
                "{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let live: serde_json::Value =
                serde_json::from_slice(&out.stdout).expect("live telemetry JSON");

            let journal_path = tmp(&format!("replay_telemetry_{policy}_{seed}.json"));
            assert!(wdm()
                .args(base)
                .args(["--journal", journal_path.to_str().expect("utf8")])
                .status()
                .expect("spawn")
                .success());
            let out = wdm()
                .args([
                    "replay",
                    journal_path.to_str().expect("utf8"),
                    "--telemetry",
                    "json",
                    "--json",
                ])
                .output()
                .expect("spawn");
            assert!(
                out.status.success(),
                "{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let replayed: serde_json::Value =
                serde_json::from_slice(&out.stdout).expect("replayed telemetry JSON");

            let live_t = comparable_telemetry(live.get("telemetry").expect("live telemetry"));
            let replayed_t =
                comparable_telemetry(replayed.get("telemetry").expect("replayed telemetry"));
            assert_eq!(
                live_t, replayed_t,
                "replayed telemetry diverged from live run ({policy}, seed {seed})"
            );
        }
    }
}

#[test]
fn serve_metrics_answers_prometheus_scrape() {
    use std::io::{BufRead, BufReader, Read, Write};

    let net_path = tmp("serve.wdm");
    assert!(wdm()
        .args([
            "topology",
            "nsfnet",
            "--wavelengths",
            "8",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    let mut child = wdm()
        .args([
            "serve-metrics",
            "--net",
            net_path.to_str().expect("utf8"),
            "--erlangs",
            "40",
            "--duration",
            "80",
            "--port",
            "0",
            "--serve-requests",
            "1",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("address line");
    let addr = line
        .trim()
        .strip_prefix("serving http://")
        .and_then(|rest| rest.strip_suffix("/metrics"))
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();

    let scrape = |addr: &str| -> std::io::Result<String> {
        let mut conn = std::net::TcpStream::connect(addr)?;
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: wdm\r\nConnection: close\r\n\r\n")?;
        let mut response = String::new();
        conn.read_to_string(&mut response)?;
        Ok(response)
    };

    let response = scrape(&addr).expect("first scrape");
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "{}",
        &response[..response.len().min(200)]
    );
    assert!(response.contains("text/plain; version=0.0.4"), "{response}");
    assert!(
        response.contains("wdm_requests_routed_total"),
        "counter exposition missing: {response}"
    );
    assert!(
        response.contains("# HELP wdm_requests_routed_total"),
        "HELP metadata missing: {response}"
    );
    assert!(
        response.contains("# TYPE wdm_requests_routed_total counter"),
        "TYPE metadata missing: {response}"
    );

    // The first scrape can land before any request completes, when every
    // histogram is still empty and thus skipped. Keep scraping while the
    // simulation makes progress until buckets show up; the server stays
    // alive until the run ends, so this converges well before it exits.
    let mut response = response;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while !response.contains("_bucket{le=") {
        assert!(
            std::time::Instant::now() < deadline,
            "no histogram exposition before timeout: {response}"
        );
        match scrape(&addr) {
            Ok(r) => response = r,
            // Server already drained and exited — the previous response is
            // final and must have carried the finished run's histograms.
            Err(_) => break,
        }
    }
    assert!(
        response.contains("_bucket{le="),
        "histogram exposition missing: {response}"
    );

    // Scrapes answered: the server drains the run and exits cleanly.
    let status = child.wait().expect("wait");
    assert!(status.success());
    let mut rest = String::new();
    reader.read_to_string(&mut rest).ok();
    assert!(rest.contains("scrape(s)"), "{rest}");
}
