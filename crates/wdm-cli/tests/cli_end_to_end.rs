//! End-to-end tests of the `wdm` binary (invoked as a process).

use std::path::PathBuf;
use std::process::Command;

fn wdm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wdm"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("wdm-cli-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn help_prints_usage() {
    let out = wdm().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("topology"));
    assert!(text.contains("simulate"));
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let out = wdm().output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = wdm().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn topology_info_route_pipeline() {
    let net_path = tmp("pipeline.wdm");
    let out = wdm()
        .args([
            "topology",
            "nsfnet",
            "--wavelengths",
            "8",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(net_path.exists());

    let out = wdm()
        .args(["info", "--net", net_path.to_str().expect("utf8")])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nodes            14"));
    assert!(text.contains("robust routing feasible everywhere"));

    let out = wdm()
        .args([
            "route",
            "--net",
            net_path.to_str().expect("utf8"),
            "--from",
            "0",
            "--to",
            "13",
            "--policy",
            "joint",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("primary:"));
    assert!(text.contains("backup"));
    assert!(text.contains("total cost"));
}

#[test]
fn route_json_output_is_parseable() {
    let net_path = tmp("json_route.wdm");
    assert!(wdm()
        .args([
            "topology",
            "ring:6",
            "--wavelengths",
            "4",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    let out = wdm()
        .args([
            "route",
            "--net",
            net_path.to_str().expect("utf8"),
            "--from",
            "0",
            "--to",
            "3",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("route --json must emit valid JSON");
    assert!(v.get("Protected").is_some(), "{v}");
}

#[test]
fn simulate_runs_and_reports() {
    let net_path = tmp("sim.wdm");
    assert!(wdm()
        .args([
            "topology",
            "nsfnet",
            "--wavelengths",
            "8",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    let out = wdm()
        .args([
            "simulate",
            "--net",
            net_path.to_str().expect("utf8"),
            "--erlangs",
            "10",
            "--duration",
            "50",
            "--seed",
            "7",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("blocking"));
    assert!(text.contains("mean route cost"));
}

#[test]
fn routing_failure_maps_to_error_exit() {
    // A 3-node chain has no protected route.
    let net_path = tmp("chain.wdm");
    std::fs::write(
        &net_path,
        "wavelengths 2\nnode 0 conv=none\nnode 1 conv=none\nnode 2 conv=none\n\
         link 0 1 cost=1\nlink 1 2 cost=1\n",
    )
    .expect("write");
    let out = wdm()
        .args([
            "route",
            "--net",
            net_path.to_str().expect("utf8"),
            "--from",
            "0",
            "--to",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("routing failed"));
}

#[test]
fn out_of_range_node_is_a_clean_error() {
    let net_path = tmp("range.wdm");
    assert!(wdm()
        .args([
            "topology",
            "ring:5",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    let out = wdm()
        .args([
            "route",
            "--net",
            net_path.to_str().expect("utf8"),
            "--from",
            "0",
            "--to",
            "99",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("node ids must be in 0..5"), "{err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn non_positive_simulate_params_are_clean_errors() {
    let net_path = tmp("params.wdm");
    assert!(wdm()
        .args([
            "topology",
            "ring:5",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    for bad in [
        ["--erlangs", "-5", "--duration", "10"],
        ["--erlangs", "0", "--duration", "10"],
        ["--erlangs", "5", "--duration", "0"],
    ] {
        let out = wdm()
            .args(["simulate", "--net", net_path.to_str().expect("utf8")])
            .args(bad)
            .output()
            .expect("spawn");
        assert!(!out.status.success());
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("must all be positive"), "{err}");
        assert!(!err.contains("panicked"), "must not panic: {err}");
    }
}

#[test]
fn journal_record_and_replay_verify() {
    let net_path = tmp("journal.wdm");
    assert!(wdm()
        .args([
            "topology",
            "nsfnet",
            "--wavelengths",
            "8",
            "--out",
            net_path.to_str().expect("utf8"),
        ])
        .status()
        .expect("spawn")
        .success());
    let journal_path = tmp("journal.json");
    let out = wdm()
        .args([
            "simulate",
            "--net",
            net_path.to_str().expect("utf8"),
            "--erlangs",
            "40",
            "--duration",
            "100",
            "--seed",
            "3",
            "--failure-rate",
            "0.02",
            "--reconfig",
            "0.7",
            "--journal",
            journal_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = wdm()
        .args(["replay", journal_path.to_str().expect("utf8"), "--verify"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "replay --verify must pass on an untampered journal: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("provision"), "{text}");
    assert!(text.contains("matches the recorded hash"), "{text}");

    // Tampering with the recorded hash must flip --verify to a failure.
    let doc = std::fs::read_to_string(&journal_path).expect("read journal");
    let mut v: serde_json::Value = serde_json::from_str(&doc).expect("journal is JSON");
    if let serde_json::Value::Object(fields) = &mut v {
        for (k, val) in fields.iter_mut() {
            if k == "final_hash" {
                *val = serde_json::to_value(&1234567u64);
            }
        }
    }
    let bad_path = tmp("journal_bad.json");
    std::fs::write(&bad_path, serde_json::to_string(&v).expect("render")).expect("write");
    let out = wdm()
        .args(["replay", bad_path.to_str().expect("utf8"), "--verify"])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "tampered hash must fail --verify");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("hash mismatch"), "{err}");

    // --journal is a single-run recording: multi-rep invocations refuse.
    let out = wdm()
        .args([
            "simulate",
            "--net",
            net_path.to_str().expect("utf8"),
            "--erlangs",
            "10",
            "--duration",
            "20",
            "--reps",
            "2",
            "--journal",
            journal_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--reps 1"));
}

#[test]
fn dot_format_renders() {
    let out = wdm()
        .args(["topology", "grid:3x3", "--format", "dot"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));
}
