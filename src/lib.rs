//! # wdm-robust-routing
//!
//! Façade crate for the reproduction of **Weifa Liang, "Robust Routing in
//! Wide-Area WDM Networks", IPPS 2001**: establishing a primary semilightpath
//! plus an edge-disjoint backup for dynamic connection requests in a
//! wavelength-routed WDM wide-area network, minimising route cost (§3) and,
//! jointly, the network load (§4).
//!
//! This crate re-exports the workspace members so downstream users can depend
//! on a single crate:
//!
//! * [`graph`] — directed-graph substrate: CSR storage, Dijkstra,
//!   Bellman–Ford, Yen's k-shortest-paths, Suurballe's disjoint-pair
//!   algorithm, min-cost flow, and WAN topology generators.
//! * [`heap`] — priority queues (indexed d-ary, pairing, bucket).
//! * [`ilp`] — a small dense-simplex LP solver with 0/1 branch-and-bound,
//!   used by the paper's exact integer-programming formulation.
//! * [`core`] — the paper itself: the WDM network model, semilightpaths,
//!   auxiliary graphs `G'`/`G_c`/`G_rc`, the §3.3 two-approximation, the §4.1
//!   MinCog load minimiser, the §4.2 joint optimiser, exact solvers, and
//!   baselines.
//! * [`sim`] — a discrete-event dynamic-traffic simulator with failure
//!   injection and reconfiguration accounting.
//!
//! ## Quickstart
//!
//! ```
//! use wdm_robust_routing::prelude::*;
//!
//! // A 14-node NSFNET backbone with 8 wavelengths per fibre.
//! let net = NetworkBuilder::nsfnet(8).build();
//! let state = ResidualState::fresh(&net);
//!
//! let mut finder = RobustRouteFinder::new(&net);
//! let route = finder
//!     .find(&state, NodeId(0), NodeId(12))
//!     .expect("NSFNET is 2-edge-connected");
//!
//! assert!(route.is_edge_disjoint());
//! println!("primary cost {:.2}, backup cost {:.2}", route.primary.cost, route.backup.cost);
//! ```
//!
//! See `examples/` for dynamic provisioning, failure recovery and
//! load-balancing walkthroughs, and `EXPERIMENTS.md` for the paper-artifact
//! reproduction results.

pub use wdm_core as core;
pub use wdm_graph as graph;
pub use wdm_heap as heap;
pub use wdm_ilp as ilp;
pub use wdm_sim as sim;

/// One-stop imports for applications.
pub mod prelude {
    pub use wdm_core::prelude::*;
    pub use wdm_graph::{DiGraph, EdgeId, NodeId};
    pub use wdm_sim::prelude::*;
}
